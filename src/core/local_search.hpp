// Local-search refinement of deployment decisions (an extension beyond the
// paper's heuristics; evaluated in bench/ablation_local_search).
//
// Both RFH and IDB commit to a deployment and never revisit it.  This pass
// takes any valid solution and hill-climbs in two neighborhoods:
//   * move:  shift one node from post a to post b (m_a > 1),
//   * swap paths are subsumed by repeated moves, so moves suffice.
// Every candidate is priced with the charging-aware shortest-path routing
// (optimal for a fixed deployment), so the search walks the same objective
// the exact solver optimizes and terminates at a local optimum of it.
#pragma once

#include <cstdint>

#include "core/cost.hpp"
#include "core/solution.hpp"

namespace wrsn::obs {
class Sink;
}

namespace wrsn::core {

struct LocalSearchOptions {
  /// Hard cap on improvement passes (a pass scans all (a, b) moves).
  int max_passes = 50;
  /// Accept a move only when it improves by more than this relative slack
  /// (guards against cycling on floating-point noise).
  double min_relative_gain = 1e-12;
  /// Observer notified per candidate move (accept/reject + delta) and per
  /// pass (obs/sink.hpp); nullptr = none. Purely observational.
  obs::Sink* sink = nullptr;
};

struct LocalSearchResult {
  Solution solution;
  double cost = 0.0;
  /// Cost of the solution the search started from.
  double initial_cost = 0.0;
  int moves_applied = 0;
  int passes = 0;
  /// Deployments priced (one charging-aware Dijkstra each).
  std::uint64_t evaluations = 0;
};

/// Refines `start` (which must be valid for `instance`). The result never
/// costs more than the input.
LocalSearchResult refine_solution(const Instance& instance, const Solution& start,
                                  const LocalSearchOptions& options = {});

}  // namespace wrsn::core
