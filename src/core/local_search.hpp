// Local-search refinement of deployment decisions (an extension beyond the
// paper's heuristics; evaluated in bench/ablation_local_search).
//
// Both RFH and IDB commit to a deployment and never revisit it.  This pass
// takes any valid solution and hill-climbs in two neighborhoods:
//   * move:  shift one node from post a to post b (m_a > 1),
//   * swap paths are subsumed by repeated moves, so moves suffice.
// Every candidate is priced with the charging-aware shortest-path routing
// (optimal for a fixed deployment), so the search walks the same objective
// the exact solver optimizes and terminates at a local optimum of it.
// By default candidates are priced by dynamic shortest-path repair
// (core::DeploymentPricer) instead of a fresh Dijkstra each; see
// MovePricing below for the equivalence contract.
//
// Candidate pricing can run on several threads.  The parallel
// first-improvement mode speculates ahead in the serial scan order and
// rewinds past the first accepted move, so the accepted-move sequence -- and
// therefore the result -- is bit-identical to the serial scan for every
// thread count; only `wasted_evaluations` (discarded speculation) varies.
#pragma once

#include <cstdint>

#include "core/cost.hpp"
#include "core/solution.hpp"

namespace wrsn::obs {
class Sink;
class ProgressSink;
}

namespace wrsn::core {

enum class LocalSearchStrategy {
  /// Accept the first improving move found in (a, b) scan order (default;
  /// matches the historical serial behavior exactly).
  kFirstImprovement,
  /// Sweep the whole neighborhood, apply the single best improving move per
  /// pass (ties broken toward the smallest (a, b)).
  kBestImprovement,
};

enum class MovePricing {
  /// One fresh charging-aware Dijkstra per candidate (the historical path;
  /// golden-regression tests pin against it bit-for-bit).
  kFull,
  /// Dynamic shortest-path repair per candidate (core::DeploymentPricer):
  /// equal to kFull within the FP-summation tolerance documented in
  /// docs/performance.md, and >= 5x faster at N = 300 (default).
  kIncremental,
};

struct LocalSearchOptions {
  /// Hard cap on improvement passes (a pass scans all (a, b) moves).
  int max_passes = 50;
  /// Accept a move only when it improves by more than this relative slack
  /// (guards against cycling on floating-point noise).
  double min_relative_gain = 1e-12;
  /// Worker threads pricing candidates: 1 = serial, 0 = all hardware
  /// threads.  Any value yields the same solution (see file comment).
  int threads = 1;
  LocalSearchStrategy strategy = LocalSearchStrategy::kFirstImprovement;
  /// How candidate moves are priced.  kIncremental changes costs only at the
  /// floating-point summation level; the accepted-move sequence is identical
  /// whenever no two candidates price within ~1e-12 relative of each other
  /// (`min_relative_gain` absorbs ulp-level accept flips).
  MovePricing pricing = MovePricing::kIncremental;
  /// Observer notified per candidate move (accept/reject + delta), per pass
  /// and per run (obs/sink.hpp); nullptr = none.  Purely observational;
  /// callbacks always fire from the calling thread in serial scan order.
  obs::Sink* sink = nullptr;
  /// Live `wrsn-progress v1` heartbeats under source "ls" (best cost, moves
  /// tried/accepted, incremental-vs-full pricing counts); nullptr = silent.
  /// Like `sink`, purely observational and fired from the calling thread.
  obs::ProgressSink* progress = nullptr;
};

struct LocalSearchResult {
  Solution solution;
  double cost = 0.0;
  /// Cost of the solution the search started from.
  double initial_cost = 0.0;
  int moves_applied = 0;
  int passes = 0;
  /// Deployments priced (one charging-aware Dijkstra each) that the serial
  /// scan would also have priced.
  std::uint64_t evaluations = 0;
  /// Speculative pricings discarded by first-improvement rewinds (always 0
  /// when threads == 1 or strategy == kBestImprovement).
  std::uint64_t wasted_evaluations = 0;
  /// Actual worker count after resolving threads == 0.
  int threads_used = 1;
};

/// Refines `start` (which must be valid for `instance`). The result never
/// costs more than the input.
LocalSearchResult refine_solution(const Instance& instance, const Solution& start,
                                  const LocalSearchOptions& options = {});

}  // namespace wrsn::core
