// 3-CNF formulas for the NP-completeness reduction (Section IV).
#pragma once

#include <array>
#include <vector>

#include "util/rng.hpp"

namespace wrsn::npc {

/// A literal: variable index (0-based) possibly negated.
struct Literal {
  int var = 0;
  bool negated = false;

  friend constexpr bool operator==(const Literal&, const Literal&) = default;
};

/// A 3-literal disjunction C_j = y_1 v y_2 v y_3.
struct Clause {
  std::array<Literal, 3> literals{};
};

/// A 3-CNF instance over variables x_0..x_{n-1}.
struct Cnf {
  int num_vars = 0;
  std::vector<Clause> clauses;
};

/// Evaluates the formula under a full assignment.
bool evaluate(const Cnf& cnf, const std::vector<bool>& assignment);

/// True when variable `var` occurs (with polarity `negated`) in any clause.
bool literal_occurs(const Cnf& cnf, int var, bool negated);

/// Random 3-CNF with three *distinct* variables per clause and every
/// variable occurring in at least one clause (required by the gadget).
/// Requires num_vars >= 3 and num_clauses * 3 >= num_vars.
Cnf random_3cnf(int num_vars, int num_clauses, util::Rng& rng);

}  // namespace wrsn::npc
