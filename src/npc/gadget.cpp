#include "npc/gadget.hpp"

#include <stdexcept>

namespace wrsn::npc {
namespace {

constexpr int kLevelL1 = 0;  // per-bit energy e1
constexpr int kLevelL2 = 1;  // per-bit energy 4*e1

/// Post-index layout shared by build_gadget before the Gadget exists.
struct Layout {
  int num_vars;
  int num_clauses;
  int u_post(int clause) const { return clause; }
  int v_post(int clause) const { return num_clauses + clause; }
  int s_post(int var, int k) const { return 2 * num_clauses + 2 * var + (k - 1); }
};

}  // namespace

Gadget build_gadget(const Cnf& cnf, const GadgetParams& params) {
  if (!(params.e0 < params.e1) || params.e0 <= 0.0) {
    throw std::invalid_argument("gadget requires 0 < e0 < e1");
  }
  const int n = cnf.num_vars;
  const int m = static_cast<int>(cnf.clauses.size());
  if (n < 1 || m < 1) throw std::invalid_argument("gadget needs a non-empty formula");
  for (int i = 0; i < n; ++i) {
    if (!literal_occurs(cnf, i, false) && !literal_occurs(cnf, i, true)) {
      throw std::invalid_argument("variable " + std::to_string(i) +
                                  " occurs in no clause; its posts would be disconnected");
    }
  }

  const Layout layout{n, m};
  const int num_posts = 2 * n + 2 * m;
  graph::ReachGraph graph(num_posts);
  const int bs = graph.base_station();

  // U_j reaches the base station only at l2; nothing else reaches it.
  for (int j = 0; j < m; ++j) {
    graph.set_min_level(layout.u_post(j), bs, kLevelL2);
  }
  // Literal edges: S_{i,1} <-> U_j at l2 for x_i in C_j (S_{i,2} for !x_i),
  // and V_j <-> the same S posts at l1.
  for (int j = 0; j < m; ++j) {
    for (const Literal& lit : cnf.clauses[static_cast<std::size_t>(j)].literals) {
      const int s = layout.s_post(lit.var, lit.negated ? 2 : 1);
      graph.set_min_level_symmetric(s, layout.u_post(j), kLevelL2);
      graph.set_min_level_symmetric(layout.v_post(j), s, kLevelL1);
    }
  }
  // Variable pairs reach each other at l1.
  for (int i = 0; i < n; ++i) {
    graph.set_min_level_symmetric(layout.s_post(i, 1), layout.s_post(i, 2), kLevelL1);
  }

  const auto radio =
      energy::RadioModel::from_energies({params.e1, 4.0 * params.e1}, params.e0);
  const auto charging = energy::ChargingModel::linear(params.eta);
  const int num_nodes = 3 * n + 3 * m;

  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double bound_w = (7.0 * md + 9.0 * nd) * params.e1 / params.eta +
                         md * params.e0 / params.eta +
                         1.5 * nd * params.e0 / params.eta;

  return Gadget{core::Instance::abstract(std::move(graph), radio, charging, num_nodes),
                bound_w, n, m};
}

core::Solution intended_solution(const Gadget& gadget, const Cnf& cnf,
                                 std::vector<bool> assignment) {
  const int n = gadget.num_vars;
  const int m = gadget.num_clauses;
  if (static_cast<int>(assignment.size()) != n) {
    throw std::invalid_argument("assignment size mismatch");
  }
  if (!evaluate(cnf, assignment)) {
    throw std::invalid_argument("intended_solution requires a satisfying assignment");
  }
  // Normalize: when the satisfying literal of x_i occurs in no clause, the
  // opposite literal must occur (gadget construction guarantees one does),
  // and flipping x_i cannot unsatisfy any clause because no clause contains
  // the literal being abandoned.
  for (int i = 0; i < n; ++i) {
    const bool sat_lit_negated = !assignment[static_cast<std::size_t>(i)];
    if (!literal_occurs(cnf, i, sat_lit_negated)) {
      assignment[static_cast<std::size_t>(i)] = !assignment[static_cast<std::size_t>(i)];
    }
  }
  if (!evaluate(cnf, assignment)) {
    throw std::logic_error("normalization broke the satisfying assignment");
  }

  const core::Instance& inst = gadget.instance;
  const int bs = inst.graph().base_station();
  graph::RoutingTree tree(inst.num_posts(), bs);
  std::vector<int> deployment(static_cast<std::size_t>(inst.num_posts()), 1);

  // U_j: two nodes, reports straight to the base station at l2.
  for (int j = 0; j < m; ++j) {
    deployment[static_cast<std::size_t>(gadget.u_post(j))] = 2;
    tree.set_parent(gadget.u_post(j), bs);
  }
  // Variable pairs: the true side gets two nodes and uplinks to some clause
  // post containing its literal; the false side feeds it at l1.
  for (int i = 0; i < n; ++i) {
    const int k_true = assignment[static_cast<std::size_t>(i)] ? 1 : 2;
    const int doubled = gadget.s_post(i, k_true);
    const int single = gadget.s_post(i, k_true == 1 ? 2 : 1);
    deployment[static_cast<std::size_t>(doubled)] = 2;
    tree.set_parent(single, doubled);
    int uplink = -1;
    for (int j = 0; j < m && uplink < 0; ++j) {
      for (const Literal& lit : cnf.clauses[static_cast<std::size_t>(j)].literals) {
        if (lit.var == i && lit.negated == (k_true == 2)) {
          uplink = gadget.u_post(j);
          break;
        }
      }
    }
    if (uplink < 0) throw std::logic_error("normalized literal occurs in no clause");
    tree.set_parent(doubled, uplink);
  }
  // V_j: one node, feeds the doubled S post of the clause's chosen true
  // literal at l1.
  for (int j = 0; j < m; ++j) {
    int chosen = -1;
    for (const Literal& lit : cnf.clauses[static_cast<std::size_t>(j)].literals) {
      const bool value = assignment[static_cast<std::size_t>(lit.var)];
      if (value != lit.negated) {  // literal true under the assignment
        chosen = gadget.s_post(lit.var, lit.negated ? 2 : 1);
        break;
      }
    }
    if (chosen < 0) throw std::logic_error("clause unsatisfied after normalization");
    tree.set_parent(gadget.v_post(j), chosen);
  }

  return core::Solution{std::move(tree), std::move(deployment)};
}

std::vector<bool> assignment_from_deployment(const Gadget& gadget,
                                             const std::vector<int>& deployment) {
  std::vector<bool> assignment(static_cast<std::size_t>(gadget.num_vars), false);
  for (int i = 0; i < gadget.num_vars; ++i) {
    assignment[static_cast<std::size_t>(i)] =
        deployment[static_cast<std::size_t>(gadget.s_post(i, 1))] >= 2;
  }
  return assignment;
}

}  // namespace wrsn::npc
