#include "npc/dpll.hpp"

namespace wrsn::npc {
namespace {

enum class Value : signed char { Unset = -1, False = 0, True = 1 };

struct Solver {
  const Cnf* cnf;
  std::vector<Value> values;

  bool assigned(const Literal& lit) const {
    return values[static_cast<std::size_t>(lit.var)] != Value::Unset;
  }
  bool satisfied(const Literal& lit) const {
    const Value v = values[static_cast<std::size_t>(lit.var)];
    return (v == Value::True && !lit.negated) || (v == Value::False && lit.negated);
  }

  /// Unit propagation over the whole formula until fixpoint.
  /// Returns false on conflict. Appends the vars it set to `trail`.
  bool propagate(std::vector<int>& trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& clause : cnf->clauses) {
        int unassigned = 0;
        const Literal* last_free = nullptr;
        bool clause_satisfied = false;
        for (const Literal& lit : clause.literals) {
          if (!assigned(lit)) {
            ++unassigned;
            last_free = &lit;
          } else if (satisfied(lit)) {
            clause_satisfied = true;
            break;
          }
        }
        if (clause_satisfied) continue;
        if (unassigned == 0) return false;  // conflict
        if (unassigned == 1) {
          values[static_cast<std::size_t>(last_free->var)] =
              last_free->negated ? Value::False : Value::True;
          trail.push_back(last_free->var);
          changed = true;
        }
      }
    }
    return true;
  }

  int pick_branch_var() const {
    for (int v = 0; v < cnf->num_vars; ++v) {
      if (values[static_cast<std::size_t>(v)] == Value::Unset) return v;
    }
    return -1;
  }

  bool search() {
    std::vector<int> trail;
    if (!propagate(trail)) {
      for (int v : trail) values[static_cast<std::size_t>(v)] = Value::Unset;
      return false;
    }
    const int var = pick_branch_var();
    if (var < 0) return true;  // complete assignment, all clauses satisfied
    for (Value guess : {Value::True, Value::False}) {
      values[static_cast<std::size_t>(var)] = guess;
      if (search()) return true;
      values[static_cast<std::size_t>(var)] = Value::Unset;
    }
    for (int v : trail) values[static_cast<std::size_t>(v)] = Value::Unset;
    return false;
  }
};

}  // namespace

std::optional<std::vector<bool>> solve_dpll(const Cnf& cnf) {
  Solver solver{&cnf, std::vector<Value>(static_cast<std::size_t>(cnf.num_vars), Value::Unset)};
  if (!solver.search()) return std::nullopt;
  std::vector<bool> assignment(static_cast<std::size_t>(cnf.num_vars), false);
  for (int v = 0; v < cnf.num_vars; ++v) {
    // Unset variables (untouched by any clause) default to false.
    assignment[static_cast<std::size_t>(v)] = solver.values[static_cast<std::size_t>(v)] ==
                                              Value::True;
  }
  return assignment;
}

bool is_satisfiable(const Cnf& cnf) { return solve_dpll(cnf).has_value(); }

}  // namespace wrsn::npc
