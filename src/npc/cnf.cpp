#include "npc/cnf.hpp"

#include <algorithm>
#include <stdexcept>

namespace wrsn::npc {

bool evaluate(const Cnf& cnf, const std::vector<bool>& assignment) {
  if (static_cast<int>(assignment.size()) != cnf.num_vars) {
    throw std::invalid_argument("assignment size does not match variable count");
  }
  for (const Clause& clause : cnf.clauses) {
    bool satisfied = false;
    for (const Literal& lit : clause.literals) {
      if (assignment[static_cast<std::size_t>(lit.var)] != lit.negated) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

bool literal_occurs(const Cnf& cnf, int var, bool negated) {
  for (const Clause& clause : cnf.clauses) {
    for (const Literal& lit : clause.literals) {
      if (lit.var == var && lit.negated == negated) return true;
    }
  }
  return false;
}

Cnf random_3cnf(int num_vars, int num_clauses, util::Rng& rng) {
  if (num_vars < 3) throw std::invalid_argument("random_3cnf needs at least 3 variables");
  if (num_clauses * 3 < num_vars) {
    throw std::invalid_argument("too few clauses to mention every variable");
  }
  Cnf cnf;
  cnf.num_vars = num_vars;
  cnf.clauses.resize(static_cast<std::size_t>(num_clauses));

  // Deal variables so each appears at least once, then fill the rest
  // uniformly; polarity is a fair coin throughout.
  std::vector<int> pool;
  pool.reserve(static_cast<std::size_t>(num_clauses) * 3);
  for (int v = 0; v < num_vars; ++v) pool.push_back(v);
  std::vector<int> clause_vars;
  for (auto& clause : cnf.clauses) {
    clause_vars.clear();
    for (auto& lit : clause.literals) {
      int var = 0;
      do {
        if (!pool.empty()) {
          const int idx = rng.uniform_int(0, static_cast<int>(pool.size()) - 1);
          var = pool[static_cast<std::size_t>(idx)];
          // Only consume from the pool when it fits this clause.
          if (std::find(clause_vars.begin(), clause_vars.end(), var) == clause_vars.end()) {
            pool.erase(pool.begin() + idx);
          } else {
            var = rng.uniform_int(0, num_vars - 1);
          }
        } else {
          var = rng.uniform_int(0, num_vars - 1);
        }
      } while (std::find(clause_vars.begin(), clause_vars.end(), var) != clause_vars.end());
      clause_vars.push_back(var);
      lit = Literal{var, rng.bernoulli(0.5)};
    }
  }
  return cnf;
}

}  // namespace wrsn::npc
