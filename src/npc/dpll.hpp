// A small DPLL SAT solver used to cross-validate the NP-completeness gadget:
// for random formulas, the gadget's optimal recharging cost must be <= W
// exactly when DPLL reports satisfiable.
#pragma once

#include <optional>
#include <vector>

#include "npc/cnf.hpp"

namespace wrsn::npc {

/// Returns a satisfying assignment, or nullopt when unsatisfiable.
/// Complete search (unit propagation + branching); fine for the gadget
/// sizes (tens of variables).
std::optional<std::vector<bool>> solve_dpll(const Cnf& cnf);

/// Convenience wrapper.
bool is_satisfiable(const Cnf& cnf);

}  // namespace wrsn::npc
