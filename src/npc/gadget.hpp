// The NP-completeness reduction of Section IV: 3-CNF SAT -> deployment &
// routing.
//
// For a formula with n variables and m clauses the gadget network has
// N = 2n + 2m posts and M = 3n + 3m nodes:
//   U_j, V_j          one pair per clause C_j,
//   S_{i,1}, S_{i,2}  one pair per variable x_i.
// Radio: two levels with 4*e1 = e2, receive energy e0 < e1. Reachability:
//   U_j -> base station at l2 only;
//   S_{i,1} <-> U_j at l2 when x_i in C_j; S_{i,2} <-> U_j at l2 when !x_i in C_j;
//   S_{i,1} <-> S_{i,2} at l1;
//   V_j <-> S_{i,k} at l1 for every literal of C_j (same set U_j reaches, minus the base).
// With the per-post cap of two nodes, the optimal recharging cost is <= W
//   W = 7m e1/eta + 9n e1/eta + m e0/eta + 3n e0/(2 eta)
// exactly when the formula is satisfiable.
#pragma once

#include "core/instance.hpp"
#include "core/solution.hpp"
#include "npc/cnf.hpp"

namespace wrsn::npc {

/// Physical constants of the restricted problem used in the proof.
struct GadgetParams {
  double e1 = 1.0;    ///< per-bit energy at level l1 (e2 = 4*e1 implied)
  double e0 = 0.5;    ///< per-bit receive energy, must satisfy e0 < e1
  double eta = 0.1;   ///< single-node charging efficiency
};

/// The constructed instance plus bookkeeping to read solutions back.
struct Gadget {
  core::Instance instance;
  double bound_w = 0.0;     ///< the reduction's cost threshold W
  int num_vars = 0;
  int num_clauses = 0;

  // Post-index helpers (see layout below).
  int u_post(int clause) const { return clause; }
  int v_post(int clause) const { return num_clauses + clause; }
  /// k is 1 for S_{i,1} (positive literal side) or 2 for S_{i,2}.
  int s_post(int var, int k) const { return 2 * num_clauses + 2 * var + (k - 1); }
};

/// Builds the gadget for `cnf`. Throws when some variable occurs in no
/// clause (such a variable's posts would be disconnected).
Gadget build_gadget(const Cnf& cnf, const GadgetParams& params = {});

/// Constructs the proof's intended solution from a satisfying assignment;
/// its total recharging cost equals W (unit-tested against the formula).
/// The assignment is normalized first: a variable whose satisfying literal
/// occurs in no clause is flipped (still satisfying) so the doubled S post
/// always has a U_j neighbor.
core::Solution intended_solution(const Gadget& gadget, const Cnf& cnf,
                                 std::vector<bool> assignment);

/// Reads a variable assignment back from a deployment, per claim (ii):
/// x_i = true iff S_{i,1} holds two nodes.
std::vector<bool> assignment_from_deployment(const Gadget& gadget,
                                             const std::vector<int>& deployment);

}  // namespace wrsn::npc
