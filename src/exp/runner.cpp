#include "exp/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/charger_placement.hpp"
#include "core/solution.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "sim/charger_sim.hpp"
#include "sim/charging_policy.hpp"
#include "sim/network_sim.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace wrsn::exp {
namespace {

constexpr const char* kCheckpointHeader = "wrsn-exp-checkpoint v1";

/// %.17g: enough digits that parsing the text recovers the exact double, so
/// resumed rows are bit-identical to freshly computed ones.
std::string checkpoint_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Shortest round-trip decimal (io::Json's number formatting) for artifacts.
std::string artifact_double(double value) { return io::Json(value).dump(); }

/// Runner-computed solution facts appended to every ok outcome: the figure
/// formatters need them (fig10's level usage, the eta ablation's max
/// deployment) and they come from the Solution, not the solver.
void add_solution_facts(const core::Instance& instance, const core::Solution& solution,
                        core::SolverDiagnostics& diagnostics) {
  int max_m = 0;
  for (int m : solution.deployment) max_m = std::max(max_m, m);
  diagnostics.add("sol/max_m", max_m);
  const std::vector<int> levels = core::solution_levels(instance, solution);
  int used_max = 0;
  int long_hops = 0;
  for (int level : levels) {
    used_max = std::max(used_max, level);
    long_hops += level >= 3 ? 1 : 0;  // fig10's "hops at level >= 3" share
  }
  diagnostics.add("sol/max_level", used_max + 1);  // 1-based for readability
  diagnostics.add("sol/long_hop_share",
                  100.0 * long_hops / static_cast<double>(levels.empty() ? 1 : levels.size()));
}

/// Post-solve simulation stage: runs the solution through sim::NetworkSim
/// under the trial's fault sequence and folds the resilience outcomes into
/// the diagnostics (so they flow through checkpoints, CSV and JSON without
/// any format change).  Every solver on a trial sees the same fault seed --
/// delivery ratios compare paired, like costs do.
void add_simulation_facts(const SweepSpec& spec, const TrialRow& row,
                          const core::Instance& instance, const core::Solution& solution,
                          core::SolverDiagnostics& diagnostics) {
  sim::NetworkConfig config;
  config.bits_per_report = spec.sim_bits_per_report;
  config.battery_capacity_j = spec.sim_battery_j;
  config.backlog_capacity_reports = spec.sim_backlog_reports;
  config.faults.seed = spec.sim_seed(row.config_index, row.run);
  config.faults.post_destruction_hazard = row.config.hazard;
  config.faults.node_death_hazard = spec.sim_node_death_hazard;
  config.faults.link_outage_hazard = spec.sim_link_outage_hazard;
  config.faults.link_outage_rounds = spec.sim_link_outage_rounds;
  config.repair = sim::repair_policy_from_name(spec.sim_repair);
  config.maintenance_period = spec.sim_maintenance_period;

  sim::NetworkSim sim(instance, solution, config);
  sim.run_rounds(static_cast<std::uint64_t>(spec.sim_rounds));

  diagnostics.add("sim/delivery_ratio", sim.delivery_ratio());
  diagnostics.add("sim/delivered_bits", sim.delivered_bits_total());
  diagnostics.add("sim/dropped_bits", sim.dropped_bits_total());
  diagnostics.add("sim/faults", static_cast<double>(sim.faults_injected()));
  diagnostics.add("sim/reroutes", static_cast<double>(sim.reroutes()));
  diagnostics.add("sim/repair_latency_mean", sim.repair_latency_mean());
  diagnostics.add("sim/destroyed_posts", sim.destroyed_post_count());
  diagnostics.add("sim/dead_nodes", sim.dead_node_count());
}

/// Charging-policy evaluation stage: co-simulates the solution once per
/// policy spec under the SAME fault seed and charger parameters, so the
/// per-policy outcomes compare paired across policies, solvers and trials.
/// The spec "fixed" runs zero mobile chargers over the greedy
/// core::place_chargers result instead of a mobile fleet.
void add_policy_facts(const SweepSpec& spec, const TrialRow& row,
                      const core::Instance& instance, const core::Solution& solution,
                      core::SolverDiagnostics& diagnostics) {
  for (std::size_t i = 0; i < spec.policies_to_evaluate.size(); ++i) {
    const std::string& policy_spec = spec.policies_to_evaluate[i];
    const std::string prefix = "pol" + std::to_string(i);

    sim::NetworkConfig net_config;
    net_config.bits_per_report = spec.policy_bits_per_report;
    net_config.battery_capacity_j = spec.policy_battery_j;
    net_config.faults.seed = spec.sim_seed(row.config_index, row.run);
    net_config.faults.post_destruction_hazard = row.config.hazard;
    sim::NetworkSim network(instance, solution, net_config);

    sim::ChargerConfig charger_config;
    charger_config.speed_mps = spec.policy_speed_mps;
    charger_config.radiated_power_w = spec.policy_power_w;
    charger_config.travel_power_w = spec.policy_travel_power_w;
    charger_config.low_watermark = spec.policy_low_watermark;
    charger_config.high_watermark = spec.policy_high_watermark;
    charger_config.round_period_s = spec.policy_round_period_s;

    std::vector<sim::FixedCharger> fixed;
    int fleet = spec.policy_fleet;
    if (policy_spec == "fixed" || policy_spec.rfind("fixed:", 0) == 0) {
      core::PlacementConfig placement_config;
      placement_config.coverage_radius_m = spec.placement_radius_m;
      placement_config.radiated_power_w = spec.placement_power_w;
      placement_config.max_chargers = spec.placement_max_chargers;
      placement_config.round_period_s = spec.policy_round_period_s;
      placement_config.bits_per_round = spec.policy_bits_per_report;
      placement_config.max_duty = spec.placement_max_duty;
      const core::PlacementResult placement =
          core::place_chargers(instance, solution, placement_config);
      fixed = sim::fixed_chargers_from(placement, spec.placement_power_w,
                                       spec.placement_radius_m);
      fleet = 0;
      diagnostics.add(prefix + "/chargers",
                      static_cast<double>(placement.chargers.size()));
      diagnostics.add(prefix + "/uncovered",
                      static_cast<double>(placement.uncovered.size()));
    }

    sim::ChargerSim charger(network, charger_config, fleet,
                            sim::make_charging_policy(policy_spec), std::move(fixed));
    charger.run(static_cast<std::uint64_t>(spec.policy_rounds));
    const sim::ChargerSimStats& stats = charger.stats();

    diagnostics.add(prefix + "/delivery", network.delivery_ratio());
    diagnostics.add(prefix + "/dead_nodes", network.dead_node_count());
    diagnostics.add(prefix + "/any_death", stats.any_death ? 1.0 : 0.0);
    diagnostics.add(prefix + "/visits", static_cast<double>(stats.visits));
    diagnostics.add(prefix + "/radiated_per_round", stats.radiated_per_round());
    diagnostics.add(prefix + "/travel_j", stats.travel_j);
    if (stats.fixed_radiated_j > 0.0) {
      diagnostics.add(prefix + "/fixed_j", stats.fixed_radiated_j);
    }
  }
}

struct LoadedCheckpoint {
  bool had_header = false;
  std::vector<char> done;
  std::vector<std::vector<SolverOutcome>> rows;  // valid where done
  int count = 0;
};

/// Reads a checkpoint file; a missing file resumes nothing.  Trials are
/// restored only from a complete block (every solver row followed by the
/// `done` marker); a truncated tail -- e.g. a run killed mid-write -- is
/// silently dropped and those trials re-run.
LoadedCheckpoint load_checkpoint(const std::string& path, const SweepSpec& spec,
                                 int num_trials, int num_solvers) {
  LoadedCheckpoint loaded;
  loaded.done.assign(static_cast<std::size_t>(num_trials), 0);
  loaded.rows.resize(static_cast<std::size_t>(num_trials));
  std::ifstream in(path);
  if (!in) return loaded;

  std::string line;
  if (!std::getline(in, line)) return loaded;  // empty file = fresh start
  if (line != kCheckpointHeader) {
    throw std::runtime_error("'" + path + "' is not a " + kCheckpointHeader + " file");
  }
  if (!std::getline(in, line) || line.rfind("fingerprint ", 0) != 0) {
    throw std::runtime_error("checkpoint '" + path + "' is missing its fingerprint line");
  }
  const std::string expected =
      "fingerprint " + SweepSpec::fingerprint_hex(spec.fingerprint());
  if (line != expected) {
    throw std::runtime_error("checkpoint '" + path +
                             "' was written for a different scenario (fingerprint mismatch); "
                             "delete it or pick another checkpoint path");
  }
  loaded.had_header = true;

  struct Pending {
    std::vector<SolverOutcome> outcomes;
    std::vector<char> seen;
  };
  std::map<int, Pending> pending;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string tag;
    tokens >> tag;
    if (tag.empty()) continue;
    if (tag == "row") {
      int trial = -1;
      int solver = -1;
      std::string status;
      tokens >> trial >> solver >> status;
      if (!tokens || trial < 0 || trial >= num_trials || solver < 0 || solver >= num_solvers) {
        break;  // truncated/corrupt tail
      }
      auto [it, inserted] = pending.try_emplace(
          trial, Pending{std::vector<SolverOutcome>(static_cast<std::size_t>(num_solvers)),
                         std::vector<char>(static_cast<std::size_t>(num_solvers), 0)});
      SolverOutcome& outcome = it->second.outcomes[static_cast<std::size_t>(solver)];
      if (status == "ok") {
        int ndiag = -1;
        tokens >> outcome.cost >> outcome.seconds >> ndiag;
        if (!tokens || ndiag < 0) break;
        bool complete = true;
        for (int i = 0; i < ndiag; ++i) {
          std::string key;
          double value = 0.0;
          tokens >> key >> value;
          if (!tokens) {
            complete = false;
            break;
          }
          outcome.diagnostics.add(std::move(key), value);
        }
        if (!complete) break;
        outcome.ok = true;
      } else if (status == "error") {
        std::string message;
        std::getline(tokens, message);
        if (!message.empty() && message.front() == ' ') message.erase(0, 1);
        outcome.ok = false;
        outcome.error = std::move(message);
      } else {
        break;
      }
      it->second.seen[static_cast<std::size_t>(solver)] = 1;
    } else if (tag == "done") {
      int trial = -1;
      tokens >> trial;
      if (!tokens || trial < 0 || trial >= num_trials) break;
      const auto it = pending.find(trial);
      if (it == pending.end()) continue;
      bool all_seen = true;
      for (char seen : it->second.seen) all_seen = all_seen && seen != 0;
      if (all_seen) {
        loaded.rows[static_cast<std::size_t>(trial)] = std::move(it->second.outcomes);
        if (!loaded.done[static_cast<std::size_t>(trial)]) ++loaded.count;
        loaded.done[static_cast<std::size_t>(trial)] = 1;
      }
      pending.erase(it);
    } else {
      break;
    }
  }
  return loaded;
}

void append_trial(std::ofstream& out, const TrialRow& row) {
  for (std::size_t s = 0; s < row.outcomes.size(); ++s) {
    const SolverOutcome& outcome = row.outcomes[s];
    if (outcome.ok) {
      out << "row " << row.trial << ' ' << s << " ok " << checkpoint_double(outcome.cost)
          << ' ' << checkpoint_double(outcome.seconds) << ' '
          << outcome.diagnostics.items.size();
      for (const auto& [key, value] : outcome.diagnostics.items) {
        std::string safe = key;  // the line format is space-separated
        for (char& c : safe) {
          if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
        }
        out << ' ' << safe << ' ' << checkpoint_double(value);
      }
      out << '\n';
    } else {
      std::string message = outcome.error.empty() ? "unknown" : outcome.error;
      for (char& c : message) {
        if (c == '\n' || c == '\r') c = ' ';
      }
      out << "row " << row.trial << ' ' << s << " error " << message << '\n';
    }
  }
  // The done marker commits the block: resume restores a trial only when
  // every row line above it landed on disk.
  out << "done " << row.trial << '\n';
  out.flush();
}

std::string csv_escape(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

util::RunningStats SweepResult::cost_stats(int config_index, int solver_index) const {
  util::RunningStats stats;
  for (int run = 0; run < runs; ++run) {
    const SolverOutcome& outcome =
        trials[static_cast<std::size_t>(config_index * runs + run)]
            .outcomes[static_cast<std::size_t>(solver_index)];
    if (outcome.ok) stats.add(outcome.cost);
  }
  return stats;
}

util::RunningStats SweepResult::diag_stats(int config_index, int solver_index,
                                           std::string_view key) const {
  util::RunningStats stats;
  for (int run = 0; run < runs; ++run) {
    const SolverOutcome& outcome =
        trials[static_cast<std::size_t>(config_index * runs + run)]
            .outcomes[static_cast<std::size_t>(solver_index)];
    if (!outcome.ok) continue;
    if (const auto value = outcome.diagnostics.find(key)) stats.add(*value);
  }
  return stats;
}

ExperimentRunner::ExperimentRunner(SweepSpec spec, RunnerOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  spec_.validate();
  // expanded_solvers() fans `exact` specs across the exact_threads axis; an
  // empty axis makes it exactly spec_.solvers.
  for (const std::string& text : spec_.expanded_solvers()) {
    solvers_.push_back(core::SolverRegistry::global().create(text));
  }
}

SweepResult ExperimentRunner::run() {
  util::Timer timer;
  const std::vector<ScenarioConfig> configs = spec_.expand();
  const int num_trials = spec_.num_trials();
  const int num_solvers = static_cast<int>(solvers_.size());

  SweepResult result;
  result.runs = spec_.runs;
  for (const auto& solver : solvers_) result.solver_names.push_back(solver->name());
  result.trials.resize(static_cast<std::size_t>(num_trials));
  for (int t = 0; t < num_trials; ++t) {
    TrialRow& row = result.trials[static_cast<std::size_t>(t)];
    row.trial = t;
    row.config_index = t / spec_.runs;
    row.run = t % spec_.runs;
    row.config = configs[static_cast<std::size_t>(row.config_index)];
    row.field_seed = spec_.field_seed(row.config_index, row.run);
    row.outcomes.resize(static_cast<std::size_t>(num_solvers));
  }

  std::vector<char> done(static_cast<std::size_t>(num_trials), 0);
  std::ofstream checkpoint;
  if (!options_.checkpoint_path.empty()) {
    LoadedCheckpoint loaded =
        load_checkpoint(options_.checkpoint_path, spec_, num_trials, num_solvers);
    for (int t = 0; t < num_trials; ++t) {
      if (!loaded.done[static_cast<std::size_t>(t)]) continue;
      done[static_cast<std::size_t>(t)] = 1;
      result.trials[static_cast<std::size_t>(t)].outcomes =
          std::move(loaded.rows[static_cast<std::size_t>(t)]);
      result.trials[static_cast<std::size_t>(t)].resumed = true;
    }
    result.resumed_trials = loaded.count;
    checkpoint.open(options_.checkpoint_path, std::ios::app);
    if (!checkpoint) {
      throw std::runtime_error("cannot open checkpoint '" + options_.checkpoint_path +
                               "' for appending");
    }
    if (!loaded.had_header) {
      checkpoint << kCheckpointHeader << '\n'
                 << "fingerprint " << SweepSpec::fingerprint_hex(spec_.fingerprint()) << '\n';
      checkpoint.flush();
    }
  }

  static obs::Counter& trials_run = obs::Registry::global().counter("exp/trials_run");
  static obs::Counter& trials_resumed = obs::Registry::global().counter("exp/trials_resumed");
  static obs::Counter& solver_errors = obs::Registry::global().counter("exp/solver_errors");
  trials_resumed.increment(static_cast<std::uint64_t>(result.resumed_trials));

  std::mutex commit_mutex;
  // Heartbeat state, guarded by commit_mutex along with the checkpoint.
  int trials_done = 0;
  util::RunningStats ok_costs;
  const auto emit_progress = [&](bool final_event) {
    // Caller holds commit_mutex (or the pool has been joined).
    if (options_.progress == nullptr) return;
    if (!final_event && !options_.progress->wants("exp")) return;
    obs::ProgressEvent event("exp", final_event);
    event.add("trials_done", trials_done);
    event.add("trials_total", num_trials);
    const double elapsed_s = timer.elapsed_seconds();
    if (trials_done > 0 && trials_done < num_trials) {
      event.add("eta_s", elapsed_s / trials_done * (num_trials - trials_done));
    }
    if (ok_costs.count() > 0) {
      event.add("cost_mean", ok_costs.mean());
      event.add("cost_min", ok_costs.min());
      event.add("cost_max", ok_costs.max());
    }
    options_.progress->emit(event);
  };
  const auto note_trial_done = [&](const TrialRow& row) {
    ++trials_done;
    for (const SolverOutcome& outcome : row.outcomes) {
      if (outcome.ok) ok_costs.add(outcome.cost);
    }
    emit_progress(false);
  };
  util::ThreadPool pool(options_.threads);
  pool.parallel_for(num_trials, [&](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t t = begin; t < end; ++t) {
      TrialRow& row = result.trials[static_cast<std::size_t>(t)];
      if (done[static_cast<std::size_t>(t)]) {
        std::lock_guard<std::mutex> lock(commit_mutex);
        if (options_.on_trial) options_.on_trial(row);
        note_trial_done(row);
        continue;
      }
      std::optional<core::Instance> instance;
      std::string instance_error;
      try {
        instance.emplace(spec_.build_instance(row.config, row.field_seed));
      } catch (const std::exception& error) {
        instance_error = error.what();
      }
      for (int s = 0; s < num_solvers; ++s) {
        SolverOutcome& outcome = row.outcomes[static_cast<std::size_t>(s)];
        if (!instance.has_value()) {
          outcome.ok = false;
          outcome.error = "instance: " + instance_error;
          solver_errors.increment();
          continue;
        }
        util::Timer solve_timer;
        try {
          core::SolverRun solved = solvers_[static_cast<std::size_t>(s)]->solve(
              *instance, options_.sink);
          outcome.seconds = solve_timer.elapsed_seconds();
          outcome.ok = true;
          outcome.cost = solved.cost;
          outcome.diagnostics = std::move(solved.diagnostics);
          add_solution_facts(*instance, solved.solution, outcome.diagnostics);
          if (spec_.sim_rounds > 0) {
            add_simulation_facts(spec_, row, *instance, solved.solution,
                                 outcome.diagnostics);
          }
          if (!spec_.policies_to_evaluate.empty()) {
            add_policy_facts(spec_, row, *instance, solved.solution,
                             outcome.diagnostics);
          }
          if (options_.keep_solutions) outcome.solution = std::move(solved.solution);
        } catch (const std::exception& error) {
          outcome.seconds = solve_timer.elapsed_seconds();
          outcome.ok = false;
          outcome.error = error.what();
          solver_errors.increment();
        }
      }
      trials_run.increment();
      {
        std::lock_guard<std::mutex> lock(commit_mutex);
        if (checkpoint.is_open()) append_trial(checkpoint, row);
        if (options_.on_trial) options_.on_trial(row);
        note_trial_done(row);
      }
    }
  });
  emit_progress(true);  // pool joined: closing totals, no lock needed

  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

void write_rows_csv(std::ostream& out, const SweepResult& result, bool include_timings) {
  // Union of diagnostic keys in first-appearance order (trial-major), so
  // the column set is a pure function of the rows, not the thread count.
  std::vector<std::string> diag_keys;
  for (const TrialRow& row : result.trials) {
    for (const SolverOutcome& outcome : row.outcomes) {
      for (const auto& [key, value] : outcome.diagnostics.items) {
        bool known = false;
        for (const std::string& existing : diag_keys) known = known || existing == key;
        if (!known) diag_keys.push_back(key);
      }
    }
  }

  out << "trial,config,run,posts,nodes,levels,eta,hazard,field_seed,solver,status,cost,error";
  if (include_timings) out << ",seconds";
  for (const std::string& key : diag_keys) out << ',' << csv_escape(key);
  out << '\n';

  for (const TrialRow& row : result.trials) {
    for (std::size_t s = 0; s < row.outcomes.size(); ++s) {
      const SolverOutcome& outcome = row.outcomes[s];
      out << row.trial << ',' << row.config_index << ',' << row.run << ','
          << row.config.posts << ',' << row.config.nodes << ',' << row.config.levels << ','
          << artifact_double(row.config.eta) << ',' << artifact_double(row.config.hazard)
          << ',' << row.field_seed << ','
          << csv_escape(result.solver_names[s]) << ',' << (outcome.ok ? "ok" : "error")
          << ',';
      if (outcome.ok) out << artifact_double(outcome.cost);
      out << ',' << csv_escape(outcome.error);
      if (include_timings) out << ',' << artifact_double(outcome.seconds);
      for (const std::string& key : diag_keys) {
        out << ',';
        if (const auto value = outcome.diagnostics.find(key)) out << artifact_double(*value);
      }
      out << '\n';
    }
  }
}

void write_rows_json(std::ostream& out, const SweepSpec& spec, const SweepResult& result,
                     bool include_timings) {
  io::Json rows = io::Json::array();
  for (const TrialRow& row : result.trials) {
    for (std::size_t s = 0; s < row.outcomes.size(); ++s) {
      const SolverOutcome& outcome = row.outcomes[s];
      io::Json entry = io::Json::object();
      entry.set("trial", io::Json(row.trial));
      entry.set("config", io::Json(row.config_index));
      entry.set("run", io::Json(row.run));
      entry.set("posts", io::Json(row.config.posts));
      entry.set("nodes", io::Json(row.config.nodes));
      entry.set("levels", io::Json(row.config.levels));
      entry.set("eta", io::Json(row.config.eta));
      entry.set("hazard", io::Json(row.config.hazard));
      entry.set("field_seed", io::Json(row.field_seed));
      entry.set("solver", io::Json(result.solver_names[s]));
      entry.set("ok", io::Json(outcome.ok));
      if (outcome.ok) {
        entry.set("cost", io::Json(outcome.cost));
      } else {
        entry.set("error", io::Json(outcome.error));
      }
      if (include_timings) entry.set("seconds", io::Json(outcome.seconds));
      io::Json diagnostics = io::Json::object();
      for (const auto& [key, value] : outcome.diagnostics.items) {
        diagnostics.set(key, io::Json(value));
      }
      entry.set("diagnostics", std::move(diagnostics));
      rows.push_back(std::move(entry));
    }
  }
  io::Json document = io::Json::object();
  document.set("format", io::Json(std::string("wrsn-exp-rows v1")));
  document.set("scenario", spec.to_json());
  document.set("rows", std::move(rows));
  out << document.dump(2) << '\n';
}

}  // namespace wrsn::exp
