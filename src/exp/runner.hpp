// Experiment engine: prices a SweepSpec's trial grid with the unified
// solver registry, in parallel, reproducibly.
//
// Determinism contract: a trial's outcome depends only on (spec, trial id).
// Seeds derive from indices (SweepSpec::field_seed), solvers are stateless
// and re-entrant, and every result lands in a pre-sized per-trial slot -- so
// the returned SweepResult (and the CSV/JSON artifacts rendered from it) is
// bit-identical for every --threads value and any execution order.  Wall
// times are recorded per trial but excluded from artifacts by default,
// keeping them deterministic.
//
// Checkpointing: with a checkpoint path set, every finished trial is
// appended to a `wrsn-exp-checkpoint v1` line file (rows first, then a
// `done` marker, under one lock).  Re-running the same spec against the
// same file skips all `done` trials; a fingerprint line refuses checkpoints
// written for a different spec.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "exp/spec.hpp"
#include "util/stats.hpp"

namespace wrsn::exp {

/// One solver's outcome on one trial instance.
struct SolverOutcome {
  bool ok = false;
  /// Total recharging cost (the paper's objective); valid when ok.
  double cost = 0.0;
  /// Wall time of the solve call.  Nondeterministic; excluded from
  /// artifacts unless explicitly requested.
  double seconds = 0.0;
  /// Exception message when !ok (e.g. InfeasibleInstance).
  std::string error;
  /// Solver diagnostics plus the runner's sol/* solution facts.
  core::SolverDiagnostics diagnostics;
  /// Present when RunnerOptions::keep_solutions (never for resumed trials:
  /// checkpoints store rows, not solutions).
  std::optional<core::Solution> solution;
};

/// One (config, run) trial: every solver priced on the same instance.
struct TrialRow {
  int trial = 0;
  int config_index = 0;
  int run = 0;
  ScenarioConfig config;
  std::uint64_t field_seed = 0;
  /// True when the row was restored from a checkpoint, not re-run.
  bool resumed = false;
  /// Parallel to the spec's solver list.
  std::vector<SolverOutcome> outcomes;
};

struct SweepResult {
  /// Indexed by trial id (config-major: trial = config_index * runs + run).
  std::vector<TrialRow> trials;
  /// Copies of the spec dimensions the aggregation helpers need.
  std::vector<std::string> solver_names;
  int runs = 0;
  int resumed_trials = 0;
  double wall_seconds = 0.0;

  /// Cost statistics of one (config, solver) cell over its ok runs.
  util::RunningStats cost_stats(int config_index, int solver_index) const;
  /// Statistics of one diagnostic key in a (config, solver) cell; trials
  /// missing the key are skipped.
  util::RunningStats diag_stats(int config_index, int solver_index,
                                std::string_view key) const;
};

struct RunnerOptions {
  /// Worker threads (util::ThreadPool); 1 = serial, 0 = all hardware
  /// threads.  Any value yields the same SweepResult.
  int threads = 1;
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Retain each outcome's Solution in memory (off: rows only).
  bool keep_solutions = false;
  /// Observer forwarded to every solve call.  Must be thread-safe when
  /// threads != 1 (obs::MetricsSink over the global registry is).
  obs::Sink* sink = nullptr;
  /// Live `wrsn-progress v1` heartbeats under source "exp" (trials
  /// done/total, ETA, running cost summary), emitted under the runner's
  /// lock as trials finish; nullptr = silent.  Not forwarded into solver
  /// calls: concurrent trials would interleave one stream incoherently.
  obs::ProgressSink* progress = nullptr;
  /// Called under the runner's lock as each trial finishes (progress
  /// reporting).  Completion order is nondeterministic across threads.
  std::function<void(const TrialRow&)> on_trial;
};

class ExperimentRunner {
 public:
  /// Validates the spec and instantiates every solver spec (throws
  /// std::invalid_argument on either before any work starts).
  explicit ExperimentRunner(SweepSpec spec, RunnerOptions options = {});

  const SweepSpec& spec() const noexcept { return spec_; }

  /// Runs (or resumes) the sweep.  Throws std::runtime_error when the
  /// checkpoint file exists but belongs to a different spec.
  SweepResult run();

 private:
  SweepSpec spec_;
  RunnerOptions options_;
  std::vector<std::unique_ptr<core::Solver>> solvers_;
};

/// Streams one CSV row per (trial, solver).  Fixed columns:
///   trial,config,run,posts,nodes,levels,eta,hazard,field_seed,solver,status,cost,error
/// then (with `include_timings`) the nondeterministic seconds column, then
/// one column per diagnostic key (union over all rows, ordered by first
/// appearance; blank when a row lacks the key).
void write_rows_csv(std::ostream& out, const SweepResult& result,
                    bool include_timings = false);

/// Same rows as a `wrsn-exp-rows v1` JSON document.
void write_rows_json(std::ostream& out, const SweepSpec& spec, const SweepResult& result,
                     bool include_timings = false);

}  // namespace wrsn::exp
