// Declarative experiment scenarios.
//
// A `SweepSpec` describes a whole experiment campaign -- a grid of instance
// configurations (posts N x nodes M x power levels k x charging efficiency
// eta), a replication count, a seeding policy, and the list of solver specs
// (core::SolverRegistry strings) to price on every sampled instance.  The
// spec is the *complete* input: two processes loading the same spec build
// bit-identical instances and therefore produce bit-identical trial rows,
// which is what makes checkpoint/resume and cross-machine comparison sound.
//
// Specs serialize as `wrsn-scenario v1` JSON (io/json.hpp); the FNV-1a
// fingerprint of the canonical dump keys checkpoint compatibility.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "io/json.hpp"

namespace wrsn::exp {

/// FNV-1a (64-bit) over arbitrary text.  The one fingerprint primitive the
/// repo uses for "same bytes -> same work" keys: `SweepSpec::fingerprint()`
/// hashes the canonical scenario dump with it for checkpoint compatibility,
/// and the service layer (src/svc) hashes canonical scenario-parameter dumps
/// with it to key its session cache (docs/service.md).
std::uint64_t fingerprint_text(std::string_view text);

/// One point of the sweep grid: a concrete instance configuration.
struct ScenarioConfig {
  int posts = 0;       ///< N
  int nodes = 0;       ///< M
  int levels = 0;      ///< k radio power levels
  double eta = 0.0;    ///< single-node charging efficiency
  double hazard = 0.0; ///< per-round post-destruction hazard (0 = no faults)

  /// Short human-readable tag ("N=100 M=600 k=3 eta=0.01", plus " hz=..."
  /// when the fault axis is active).
  std::string label() const;
};

/// How per-trial field seeds derive from the base seed.
enum class SeedMode {
  /// field_seed = base + run * stride: every configuration at replication r
  /// sees the same seed, i.e. paired samples across the grid.  With
  /// stride = 1 this reproduces the legacy benches' `Rng(seed + run)`
  /// seeding exactly (fig6/8/9/10); fig7 uses stride = 1000.
  kPaired,
  /// field_seed = util::derive_seed(base, trial): every trial of the sweep
  /// draws an independent stream (SplitMix64-derived, order-free).
  kIndependent,
};

struct SweepSpec {
  std::string name = "sweep";

  // Instance family: square side x side field, base station lower-left,
  // radio ranges {step, 2*step, ..., k*step} with the paper's Eq.-(1)
  // constants, fields resampled until connected at d_max.
  double side = 500.0;
  double range_step = 25.0;
  /// Charging gain shape: "linear" | "sublinear" | "saturating".
  std::string charging_kind = "linear";
  /// SubLinear exponent or Saturating cap (ignored for linear).
  double charging_param = 1.0;

  // Sweep axes; the grid is the cartesian product in this nesting order
  // (posts outermost, hazard innermost).  Every axis must be non-empty.
  // The hazard axis sweeps the per-round post-destruction probability of
  // the simulation stage; its default {0.0} keeps legacy specs (and their
  // fingerprints) unchanged.
  std::vector<int> posts_axis{100};
  std::vector<int> nodes_axis{600};
  std::vector<int> levels_axis{3};
  std::vector<double> eta_axis{0.01};
  std::vector<double> hazard_axis{0.0};

  /// Replications per configuration.
  int runs = 5;
  std::uint64_t base_seed = 42;
  SeedMode seed_mode = SeedMode::kPaired;
  /// Per-run seed increment in paired mode (unused when independent).
  std::uint64_t seed_stride = 1;

  /// Solver spec strings (core::SolverRegistry), all priced per trial on
  /// the SAME instance (paired solver comparison, as the figure benches do).
  std::vector<std::string> solvers{"rfh"};

  /// Exact-solver thread fan-out: when non-empty, every `exact` solver spec
  /// that does not pin `threads=` itself is replicated once per axis value
  /// with `threads=<T>` appended (see expanded_solvers()).  Closed-run exact
  /// results are bit-identical across thread counts, so the axis measures
  /// wall clock and steal/prune behaviour, not solution quality.  Default
  /// empty = off, which keeps legacy scenario JSON -- and its checkpoint
  /// fingerprint -- byte-identical.
  std::vector<int> exact_threads_axis;

  // Post-solve simulation stage (sim::NetworkSim).  sim_rounds = 0 (the
  // default) disables the stage entirely, which also keeps legacy scenario
  // JSON -- and its checkpoint fingerprint -- byte-identical.  When active,
  // every solver's solution on a trial is simulated under the SAME fault
  // sequence (seeded from sim_seed), so delivery ratios compare paired.
  int sim_rounds = 0;
  int sim_bits_per_report = 1024;
  double sim_battery_j = 0.05;
  int sim_backlog_reports = 8;             ///< per-post backlog bound
  int sim_link_outage_rounds = 3;          ///< outage duration once drawn
  double sim_node_death_hazard = 0.0;      ///< per-round, per-post
  double sim_link_outage_hazard = 0.0;     ///< per-round, per-post
  std::string sim_repair = "none";         ///< none | reroute | maintain
  int sim_maintenance_period = 50;         ///< rounds between maintenance visits

  // Charging-policy evaluation stage (sim::ChargerSim).  An empty list (the
  // default) disables the stage and keeps legacy scenario JSON -- and its
  // checkpoint fingerprint -- byte-identical.  When active, every solver's
  // solution on a trial is co-simulated once per policy spec
  // (sim::ChargingPolicyRegistry strings) under the SAME fault sequence
  // (seeded from sim_seed) and charger parameters, so the per-policy
  // delivery/energy outcomes compare paired.  The spec "fixed" is special:
  // it runs zero mobile chargers on top of the core::place_chargers
  // placement result (the placement_* knobs below).
  std::vector<std::string> policies_to_evaluate;
  int policy_rounds = 2000;                ///< co-simulated reporting rounds
  int policy_fleet = 1;                    ///< mobile chargers (ignored by "fixed")
  int policy_bits_per_report = 4096;
  double policy_battery_j = 0.02;
  double policy_speed_mps = 5.0;           ///< charger travel speed
  double policy_power_w = 10.0;            ///< mobile charger RF power
  double policy_travel_power_w = 20.0;
  double policy_low_watermark = 0.5;
  double policy_high_watermark = 0.95;
  double policy_round_period_s = 60.0;
  // Fixed-charger placement (used by the "fixed" policy entry).
  double placement_radius_m = 50.0;        ///< coverage disc per fixed charger
  double placement_power_w = 5.0;          ///< RF output per fixed charger
  int placement_max_chargers = 0;          ///< budget; 0 = as many as needed
  double placement_max_duty = 1.0;         ///< per-post duty feasibility bound

  /// Throws std::invalid_argument on an ill-formed spec (empty axis,
  /// runs < 1, no solvers, unknown charging kind, non-positive geometry).
  void validate() const;

  /// The configuration grid in canonical order.
  std::vector<ScenarioConfig> expand() const;
  /// The solver list the runner actually prices: `solvers` with every
  /// `exact` spec lacking an explicit `threads=` option fanned out across
  /// `exact_threads_axis` (in axis order, in place of the original entry).
  /// With an empty axis this is exactly `solvers`.
  std::vector<std::string> expanded_solvers() const;
  int num_configs() const noexcept;
  /// Total trials = num_configs() * runs; trial ids are config-major:
  /// trial = config_index * runs + run.
  int num_trials() const noexcept { return num_configs() * runs; }

  /// Field seed of (config, run) under the spec's seed mode.  Depends only
  /// on the spec and the indices -- never on execution order or thread
  /// count -- so results are reproducible trial by trial.
  std::uint64_t field_seed(int config_index, int run) const;

  /// Fault-model seed of (config, run) for the simulation stage: a
  /// SplitMix64 derivation of the salted base seed by trial id, so it is --
  /// like field_seed -- a pure function of the spec and the indices,
  /// independent of execution order and thread count.
  std::uint64_t sim_seed(int config_index, int run) const;

  /// Samples the instance for `config` from `field_seed` (rejection-samples
  /// fields until connected, exactly like the legacy benches' helper).
  core::Instance build_instance(const ScenarioConfig& config, std::uint64_t field_seed) const;

  io::Json to_json() const;
  static SweepSpec from_json(const io::Json& json);
  void save(const std::string& path) const;
  static SweepSpec load(const std::string& path);

  /// FNV-1a (64-bit) over the canonical compact JSON dump.  Checkpoints
  /// store it; a resumed run refuses a checkpoint whose fingerprint
  /// differs (the rows would belong to different instances).
  std::uint64_t fingerprint() const;
  static std::string fingerprint_hex(std::uint64_t fingerprint);
};

}  // namespace wrsn::exp
