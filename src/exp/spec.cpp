#include "exp/spec.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/solver.hpp"
#include "geom/field.hpp"
#include "sim/charging_policy.hpp"
#include "sim/fault_model.hpp"
#include "util/rng.hpp"

namespace wrsn::exp {
namespace {

[[noreturn]] void bad_spec(const std::string& what) { throw std::invalid_argument(what); }

std::string seed_mode_name(SeedMode mode) {
  return mode == SeedMode::kPaired ? "paired" : "independent";
}

SeedMode seed_mode_from_name(const std::string& name) {
  if (name == "paired") return SeedMode::kPaired;
  if (name == "independent") return SeedMode::kIndependent;
  throw io::JsonError("unknown seed mode '" + name + "' (expected paired|independent)");
}

io::Json int_axis_to_json(const std::vector<int>& axis) {
  io::Json out = io::Json::array();
  for (int v : axis) out.push_back(io::Json(v));
  return out;
}

io::Json double_axis_to_json(const std::vector<double>& axis) {
  io::Json out = io::Json::array();
  for (double v : axis) out.push_back(io::Json(v));
  return out;
}

std::vector<int> int_axis_from_json(const io::Json& json) {
  std::vector<int> out;
  for (const io::Json& v : json.as_array()) out.push_back(v.as_int());
  return out;
}

std::vector<double> double_axis_from_json(const io::Json& json) {
  std::vector<double> out;
  for (const io::Json& v : json.as_array()) out.push_back(v.as_double());
  return out;
}

energy::ChargingModel make_charging(const SweepSpec& spec, double eta) {
  if (spec.charging_kind == "linear") return energy::ChargingModel::linear(eta);
  if (spec.charging_kind == "sublinear") {
    return energy::ChargingModel::sub_linear(eta, spec.charging_param);
  }
  if (spec.charging_kind == "saturating") {
    return energy::ChargingModel::saturating(eta, spec.charging_param);
  }
  bad_spec("unknown charging kind '" + spec.charging_kind +
           "' (expected linear|sublinear|saturating)");
}

// Parses `text` and reports whether it is an `exact` solver spec without an
// explicit `threads=` option, i.e. a fan-out candidate for the
// exact_threads axis.  Malformed specs are passed through untouched so the
// solver registry reports the real syntax error.
bool is_unpinned_exact_spec(const std::string& text) {
  try {
    const core::SolverSpec spec = core::SolverSpec::parse(text);
    if (spec.name != "exact") return false;
    for (const auto& [key, value] : spec.options) {
      if (key == "threads") return false;
    }
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

}  // namespace

std::string ScenarioConfig::label() const {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "N=%d M=%d k=%d eta=%g", posts, nodes, levels, eta);
  std::string out = buffer;
  if (hazard != 0.0) {
    std::snprintf(buffer, sizeof(buffer), " hz=%g", hazard);
    out += buffer;
  }
  return out;
}

void SweepSpec::validate() const {
  if (name.empty()) bad_spec("scenario name must not be empty");
  if (side <= 0.0) bad_spec("field side must be positive");
  if (range_step <= 0.0) bad_spec("radio range step must be positive");
  if (posts_axis.empty() || nodes_axis.empty() || levels_axis.empty() || eta_axis.empty() ||
      hazard_axis.empty()) {
    bad_spec("every sweep axis needs at least one value");
  }
  if (runs < 1) bad_spec("runs must be >= 1");
  if (solvers.empty()) bad_spec("at least one solver spec is required");
  if (!exact_threads_axis.empty()) {
    for (int threads : exact_threads_axis) {
      if (threads < 1) bad_spec("exact_threads axis values must be >= 1");
    }
    bool any_exact = false;
    for (const std::string& solver : solvers) {
      if (is_unpinned_exact_spec(solver)) any_exact = true;
    }
    if (!any_exact) {
      bad_spec("an exact_threads axis requires an 'exact' solver spec without "
               "an explicit threads= option");
    }
  }
  make_charging(*this, eta_axis.front());  // throws on an unknown kind
  for (int posts : posts_axis) {
    if (posts < 1) bad_spec("posts axis values must be >= 1");
  }
  for (int levels : levels_axis) {
    if (levels < 1) bad_spec("levels axis values must be >= 1");
  }
  for (double eta : eta_axis) {
    if (eta <= 0.0 || eta >= 1.0) bad_spec("eta axis values must be in (0, 1)");
  }
  for (double hazard : hazard_axis) {
    if (!(hazard >= 0.0) || hazard >= 1.0) bad_spec("hazard axis values must be in [0, 1)");
  }
  if (sim_rounds < 0) bad_spec("sim rounds must be >= 0");
  if (sim_rounds > 0) {
    if (sim_bits_per_report < 1) bad_spec("sim bits per report must be >= 1");
    if (sim_battery_j <= 0.0) bad_spec("sim battery capacity must be positive");
    if (sim_backlog_reports < 0) bad_spec("sim backlog bound must be >= 0 reports");
    if (sim_link_outage_rounds < 1) bad_spec("sim link outage duration must be >= 1 round");
    if (!(sim_node_death_hazard >= 0.0) || sim_node_death_hazard >= 1.0) {
      bad_spec("sim node death hazard must be in [0, 1)");
    }
    if (!(sim_link_outage_hazard >= 0.0) || sim_link_outage_hazard >= 1.0) {
      bad_spec("sim link outage hazard must be in [0, 1)");
    }
    if (sim_maintenance_period < 1) bad_spec("sim maintenance period must be >= 1 round");
    try {
      sim::repair_policy_from_name(sim_repair);
    } catch (const std::invalid_argument& error) {
      bad_spec(error.what());
    }
  } else if (policies_to_evaluate.empty()) {
    for (double hazard : hazard_axis) {
      if (hazard != 0.0) {
        bad_spec("a non-zero hazard axis requires sim_rounds > 0 or a policy stage");
      }
    }
  }
  if (!policies_to_evaluate.empty()) {
    for (const std::string& policy : policies_to_evaluate) {
      try {
        sim::ChargingPolicyRegistry::global().create(policy);
      } catch (const std::invalid_argument& error) {
        bad_spec(error.what());
      }
    }
    if (policy_rounds < 1) bad_spec("policy rounds must be >= 1");
    if (policy_fleet < 1) bad_spec("policy fleet size must be >= 1");
    if (policy_bits_per_report < 1) bad_spec("policy bits per report must be >= 1");
    if (policy_battery_j <= 0.0) bad_spec("policy battery capacity must be positive");
    if (policy_speed_mps <= 0.0 || policy_power_w <= 0.0 || policy_travel_power_w < 0.0 ||
        policy_round_period_s <= 0.0) {
      bad_spec("policy charger speed, power and round period must be positive");
    }
    if (!(policy_low_watermark < policy_high_watermark) || policy_high_watermark > 1.0 ||
        policy_low_watermark < 0.0) {
      bad_spec("policy watermarks must satisfy 0 <= low < high <= 1");
    }
    if (placement_radius_m <= 0.0 || placement_power_w <= 0.0 ||
        placement_max_duty <= 0.0) {
      bad_spec("placement radius, power and max duty must be positive");
    }
    if (placement_max_chargers < 0) bad_spec("placement charger budget must be >= 0");
  }
}

std::vector<ScenarioConfig> SweepSpec::expand() const {
  std::vector<ScenarioConfig> configs;
  configs.reserve(static_cast<std::size_t>(num_configs()));
  for (int posts : posts_axis) {
    for (int nodes : nodes_axis) {
      for (int levels : levels_axis) {
        for (double eta : eta_axis) {
          for (double hazard : hazard_axis) {
            configs.push_back(ScenarioConfig{posts, nodes, levels, eta, hazard});
          }
        }
      }
    }
  }
  return configs;
}

std::vector<std::string> SweepSpec::expanded_solvers() const {
  if (exact_threads_axis.empty()) return solvers;
  std::vector<std::string> out;
  out.reserve(solvers.size() + exact_threads_axis.size());
  for (const std::string& text : solvers) {
    if (!is_unpinned_exact_spec(text)) {
      out.push_back(text);
      continue;
    }
    core::SolverSpec spec = core::SolverSpec::parse(text);
    for (int threads : exact_threads_axis) {
      core::SolverSpec fanned = spec;
      fanned.options.emplace_back("threads", std::to_string(threads));
      out.push_back(fanned.canonical());
    }
  }
  return out;
}

int SweepSpec::num_configs() const noexcept {
  return static_cast<int>(posts_axis.size() * nodes_axis.size() * levels_axis.size() *
                          eta_axis.size() * hazard_axis.size());
}

std::uint64_t SweepSpec::field_seed(int config_index, int run) const {
  if (seed_mode == SeedMode::kPaired) {
    return base_seed + static_cast<std::uint64_t>(run) * seed_stride;
  }
  const std::uint64_t trial =
      static_cast<std::uint64_t>(config_index) * static_cast<std::uint64_t>(runs) +
      static_cast<std::uint64_t>(run);
  return util::derive_seed(base_seed, trial);
}

std::uint64_t SweepSpec::sim_seed(int config_index, int run) const {
  const std::uint64_t trial =
      static_cast<std::uint64_t>(config_index) * static_cast<std::uint64_t>(runs) +
      static_cast<std::uint64_t>(run);
  // Salted so the fault stream is decorrelated from the field stream even
  // in independent seed mode (where field_seed uses the same derivation).
  return util::derive_seed(base_seed ^ 0x5afe'fa17'70f5'eedbULL, trial);
}

core::Instance SweepSpec::build_instance(const ScenarioConfig& config,
                                         std::uint64_t field_seed) const {
  geom::FieldConfig field_config;
  field_config.width = side;
  field_config.height = side;
  field_config.num_posts = config.posts;
  const auto radio = energy::RadioModel::uniform_levels(config.levels, range_step);
  util::Rng rng(field_seed);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const geom::Field field = geom::generate_field(field_config, rng);
    if (!geom::is_connected(field, radio.max_range())) continue;
    return core::Instance::geometric(field, radio, make_charging(*this, config.eta),
                                     config.nodes);
  }
  throw std::runtime_error("could not sample a connected field for " + config.label());
}

io::Json SweepSpec::to_json() const {
  io::Json field = io::Json::object();
  field.set("side", io::Json(side));
  field.set("range_step", io::Json(range_step));

  io::Json charging = io::Json::object();
  charging.set("kind", io::Json(charging_kind));
  charging.set("param", io::Json(charging_param));

  io::Json axes = io::Json::object();
  axes.set("posts", int_axis_to_json(posts_axis));
  axes.set("nodes", int_axis_to_json(nodes_axis));
  axes.set("levels", int_axis_to_json(levels_axis));
  axes.set("eta", double_axis_to_json(eta_axis));
  // Emitted only when non-default so legacy scenarios keep their canonical
  // dump -- and therefore their checkpoint fingerprint -- byte-identical.
  if (!(hazard_axis.size() == 1 && hazard_axis.front() == 0.0)) {
    axes.set("hazard", double_axis_to_json(hazard_axis));
  }
  // Same rule: the exact-thread fan-out only appears when in use.
  if (!exact_threads_axis.empty()) {
    axes.set("exact_threads", int_axis_to_json(exact_threads_axis));
  }

  io::Json seed = io::Json::object();
  seed.set("base", io::Json(base_seed));
  seed.set("mode", io::Json(seed_mode_name(seed_mode)));
  seed.set("stride", io::Json(seed_stride));

  io::Json solver_list = io::Json::array();
  for (const std::string& solver : solvers) solver_list.push_back(io::Json(solver));

  io::Json out = io::Json::object();
  out.set("format", io::Json(std::string("wrsn-scenario v1")));
  out.set("name", io::Json(name));
  out.set("field", std::move(field));
  out.set("charging", std::move(charging));
  out.set("axes", std::move(axes));
  out.set("runs", io::Json(runs));
  out.set("seed", std::move(seed));
  out.set("solvers", std::move(solver_list));
  // The simulation stage block is emitted only when active (same
  // fingerprint-stability rationale as the hazard axis above).
  if (sim_rounds > 0) {
    io::Json sim = io::Json::object();
    sim.set("rounds", io::Json(sim_rounds));
    sim.set("bits_per_report", io::Json(sim_bits_per_report));
    sim.set("battery_j", io::Json(sim_battery_j));
    sim.set("backlog_reports", io::Json(sim_backlog_reports));
    sim.set("link_outage_rounds", io::Json(sim_link_outage_rounds));
    sim.set("node_death_hazard", io::Json(sim_node_death_hazard));
    sim.set("link_outage_hazard", io::Json(sim_link_outage_hazard));
    sim.set("repair", io::Json(sim_repair));
    sim.set("maintenance_period", io::Json(sim_maintenance_period));
    out.set("sim", std::move(sim));
  }
  // Same rule for the charging-policy stage: no policies, no block, so
  // legacy scenarios (and their fingerprints) stay byte-identical.
  if (!policies_to_evaluate.empty()) {
    io::Json evaluate = io::Json::array();
    for (const std::string& policy : policies_to_evaluate) {
      evaluate.push_back(io::Json(policy));
    }
    io::Json placement = io::Json::object();
    placement.set("radius_m", io::Json(placement_radius_m));
    placement.set("power_w", io::Json(placement_power_w));
    placement.set("max_chargers", io::Json(placement_max_chargers));
    placement.set("max_duty", io::Json(placement_max_duty));
    io::Json policies = io::Json::object();
    policies.set("evaluate", std::move(evaluate));
    policies.set("rounds", io::Json(policy_rounds));
    policies.set("fleet", io::Json(policy_fleet));
    policies.set("bits_per_report", io::Json(policy_bits_per_report));
    policies.set("battery_j", io::Json(policy_battery_j));
    policies.set("speed_mps", io::Json(policy_speed_mps));
    policies.set("power_w", io::Json(policy_power_w));
    policies.set("travel_power_w", io::Json(policy_travel_power_w));
    policies.set("low_watermark", io::Json(policy_low_watermark));
    policies.set("high_watermark", io::Json(policy_high_watermark));
    policies.set("round_period_s", io::Json(policy_round_period_s));
    policies.set("placement", std::move(placement));
    out.set("policies", std::move(policies));
  }
  return out;
}

SweepSpec SweepSpec::from_json(const io::Json& json) {
  if (json.at("format").as_string() != "wrsn-scenario v1") {
    throw io::JsonError("not a wrsn-scenario v1 document (format = '" +
                        json.at("format").as_string() + "')");
  }
  SweepSpec spec;
  spec.name = json.at("name").as_string();
  const io::Json& field = json.at("field");
  spec.side = field.at("side").as_double();
  spec.range_step = field.at("range_step").as_double();
  const io::Json& charging = json.at("charging");
  spec.charging_kind = charging.at("kind").as_string();
  spec.charging_param = charging.at("param").as_double();
  const io::Json& axes = json.at("axes");
  spec.posts_axis = int_axis_from_json(axes.at("posts"));
  spec.nodes_axis = int_axis_from_json(axes.at("nodes"));
  spec.levels_axis = int_axis_from_json(axes.at("levels"));
  spec.eta_axis = double_axis_from_json(axes.at("eta"));
  if (const io::Json* hazard = axes.find("hazard")) {
    spec.hazard_axis = double_axis_from_json(*hazard);
  }
  if (const io::Json* exact_threads = axes.find("exact_threads")) {
    spec.exact_threads_axis = int_axis_from_json(*exact_threads);
  }
  spec.runs = json.at("runs").as_int();
  const io::Json& seed = json.at("seed");
  spec.base_seed = seed.at("base").as_uint64();
  spec.seed_mode = seed_mode_from_name(seed.at("mode").as_string());
  spec.seed_stride = seed.at("stride").as_uint64();
  spec.solvers.clear();
  for (const io::Json& solver : json.at("solvers").as_array()) {
    spec.solvers.push_back(solver.as_string());
  }
  if (const io::Json* sim = json.find("sim")) {
    spec.sim_rounds = sim->at("rounds").as_int();
    spec.sim_bits_per_report = sim->at("bits_per_report").as_int();
    spec.sim_battery_j = sim->at("battery_j").as_double();
    spec.sim_backlog_reports = sim->at("backlog_reports").as_int();
    spec.sim_link_outage_rounds = sim->at("link_outage_rounds").as_int();
    spec.sim_node_death_hazard = sim->at("node_death_hazard").as_double();
    spec.sim_link_outage_hazard = sim->at("link_outage_hazard").as_double();
    spec.sim_repair = sim->at("repair").as_string();
    spec.sim_maintenance_period = sim->at("maintenance_period").as_int();
  }
  if (const io::Json* policies = json.find("policies")) {
    spec.policies_to_evaluate.clear();
    for (const io::Json& policy : policies->at("evaluate").as_array()) {
      spec.policies_to_evaluate.push_back(policy.as_string());
    }
    spec.policy_rounds = policies->at("rounds").as_int();
    spec.policy_fleet = policies->at("fleet").as_int();
    spec.policy_bits_per_report = policies->at("bits_per_report").as_int();
    spec.policy_battery_j = policies->at("battery_j").as_double();
    spec.policy_speed_mps = policies->at("speed_mps").as_double();
    spec.policy_power_w = policies->at("power_w").as_double();
    spec.policy_travel_power_w = policies->at("travel_power_w").as_double();
    spec.policy_low_watermark = policies->at("low_watermark").as_double();
    spec.policy_high_watermark = policies->at("high_watermark").as_double();
    spec.policy_round_period_s = policies->at("round_period_s").as_double();
    const io::Json& placement = policies->at("placement");
    spec.placement_radius_m = placement.at("radius_m").as_double();
    spec.placement_power_w = placement.at("power_w").as_double();
    spec.placement_max_chargers = placement.at("max_chargers").as_int();
    spec.placement_max_duty = placement.at("max_duty").as_double();
  }
  spec.validate();
  return spec;
}

void SweepSpec::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  out << to_json().dump(2) << "\n";
  if (!out) throw std::runtime_error("failed writing scenario to '" + path + "'");
}

SweepSpec SweepSpec::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(io::Json::parse(buffer.str()));
}

std::uint64_t fingerprint_text(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64-bit offset basis
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t SweepSpec::fingerprint() const {
  return fingerprint_text(to_json().dump());
}

std::string SweepSpec::fingerprint_hex(std::uint64_t fingerprint) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

}  // namespace wrsn::exp
