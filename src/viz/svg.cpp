#include "viz/svg.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/cost.hpp"

namespace wrsn::viz {
namespace {

/// Power-level palette: cool for short hops, hot for long ones.
const char* level_color(int level) {
  static const char* kColors[] = {"#2c7fb8", "#41ab5d", "#fe9929", "#e31a1c",
                                  "#99000d", "#54278f"};
  const int count = static_cast<int>(std::size(kColors));
  return kColors[level < count ? (level < 0 ? 0 : level) : count - 1];
}

}  // namespace

std::string render_svg(const core::Instance& instance, const core::Solution* solution,
                       const SvgOptions& options) {
  if (!instance.field()) throw std::invalid_argument("SVG rendering needs a geometric instance");
  const geom::Field& field = *instance.field();
  const double s = options.pixels_per_meter;
  const double margin = options.margin_px;
  const double width = field.width * s + 2 * margin;
  const double height = field.height * s + 2 * margin;
  // SVG y grows downward; flip so the field's lower-left corner is at the
  // picture's lower left.
  const auto px = [&](geom::Point p) {
    return std::pair<double, double>{margin + p.x * s, margin + (field.height - p.y) * s};
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width << "\" height=\""
      << height << "\" viewBox=\"0 0 " << width << ' ' << height << "\">\n";
  svg << "  <rect width=\"100%\" height=\"100%\" fill=\"#fcfcf7\"/>\n";
  svg << "  <rect x=\"" << margin << "\" y=\"" << margin << "\" width=\"" << field.width * s
      << "\" height=\"" << field.height * s
      << "\" fill=\"none\" stroke=\"#cccccc\" stroke-dasharray=\"4 3\"/>\n";

  if (options.draw_range_rings) {
    const auto [bx, by] = px(field.base_station);
    for (int level = 0; level < instance.radio().num_levels(); ++level) {
      svg << "  <circle cx=\"" << bx << "\" cy=\"" << by << "\" r=\""
          << instance.radio().range(level) * s
          << "\" fill=\"none\" stroke=\"#dddddd\"/>\n";
    }
  }

  if (solution) {
    const auto descendants = solution->tree.descendant_counts();
    const auto levels = core::solution_levels(instance, *solution);
    svg << "  <g stroke-linecap=\"round\">\n";
    for (int p = 0; p < instance.num_posts(); ++p) {
      const int parent = solution->tree.parent(p);
      const geom::Point to = parent == instance.graph().base_station()
                                 ? field.base_station
                                 : field.posts[static_cast<std::size_t>(parent)];
      const auto [x1, y1] = px(field.posts[static_cast<std::size_t>(p)]);
      const auto [x2, y2] = px(to);
      const double width_px =
          1.0 + 1.5 * std::sqrt(static_cast<double>(descendants[static_cast<std::size_t>(p)]));
      svg << "    <line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2 << "\" y2=\"" << y2
          << "\" stroke=\"" << level_color(levels[static_cast<std::size_t>(p)])
          << "\" stroke-width=\"" << width_px << "\" opacity=\"0.8\"/>\n";
    }
    svg << "  </g>\n";
  }

  // Posts: disc area proportional to the node count.
  for (int p = 0; p < instance.num_posts(); ++p) {
    const auto [x, y] = px(field.posts[static_cast<std::size_t>(p)]);
    const int m = solution ? solution->deployment[static_cast<std::size_t>(p)] : 1;
    const double r = 4.0 * std::sqrt(static_cast<double>(m));
    svg << "  <circle cx=\"" << x << "\" cy=\"" << y << "\" r=\"" << r
        << "\" fill=\"#35978f\" stroke=\"#01665e\"/>\n";
    if (options.draw_node_counts && solution && m > 1) {
      svg << "  <text x=\"" << x << "\" y=\"" << y + 3.5
          << "\" font-size=\"10\" text-anchor=\"middle\" fill=\"#ffffff\">" << m << "</text>\n";
    }
    if (options.draw_post_labels) {
      svg << "  <text x=\"" << x + r + 2 << "\" y=\"" << y - r - 2
          << "\" font-size=\"9\" fill=\"#888888\">" << p << "</text>\n";
    }
  }

  // Base station: a filled square (the paper's figures use the same glyph).
  {
    const auto [x, y] = px(field.base_station);
    svg << "  <rect x=\"" << x - 7 << "\" y=\"" << y - 7
        << "\" width=\"14\" height=\"14\" fill=\"#252525\"/>\n";
    svg << "  <text x=\"" << x + 10 << "\" y=\"" << y + 4
        << "\" font-size=\"11\" fill=\"#252525\">base</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

void save_svg(const std::string& path, const core::Instance& instance,
              const core::Solution* solution, const SvgOptions& options) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os << render_svg(instance, solution, options);
}

}  // namespace wrsn::viz
