// SVG rendering of deployment plans.
//
// A plan is spatial: which posts got stacked with nodes, where traffic
// funnels, which hops run at high power.  This renderer draws the field,
// the routing tree (edge width ~ forwarded traffic, color ~ power level),
// the posts (disc area ~ node count), and the base station, producing a
// self-contained SVG string suitable for docs or debugging.
#pragma once

#include <string>

#include "core/solution.hpp"

namespace wrsn::viz {

struct SvgOptions {
  double pixels_per_meter = 2.0;
  double margin_px = 30.0;
  bool draw_post_labels = true;
  bool draw_node_counts = true;
  /// Draw faint range circles (d_1..d_k) around the base station.
  bool draw_range_rings = false;
};

/// Renders the instance's field with, optionally, a solution overlay
/// (`solution` may be null to draw the bare field). The instance must be
/// geometric.
std::string render_svg(const core::Instance& instance, const core::Solution* solution,
                       const SvgOptions& options = {});

/// Writes render_svg() output to `path`.
void save_svg(const std::string& path, const core::Instance& instance,
              const core::Solution* solution, const SvgOptions& options = {});

}  // namespace wrsn::viz
