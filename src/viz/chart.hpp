// SVG line charts for the figure-reproduction benches.
//
// Every bench prints tables; with this renderer each can also emit the
// actual figure (cost-vs-parameter curves, one series per algorithm) as a
// self-contained SVG, making "regenerates Fig. N" literal.
#pragma once

#include <string>
#include <vector>

namespace wrsn::viz {

/// One plotted curve.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

struct ChartOptions {
  int width_px = 640;
  int height_px = 420;
  std::string title;
  std::string x_label;
  std::string y_label;
  /// Force the y axis to start at zero (the paper's figures do).
  bool y_from_zero = true;
  /// Draw circle markers at data points.
  bool markers = true;
};

/// Accumulates series and renders an SVG line chart with axes, ticks and a
/// legend. Series are colored from a built-in palette in insertion order.
class LineChart {
 public:
  explicit LineChart(ChartOptions options = {});

  /// Adds a curve; xs and ys must be equal-length and non-empty, xs
  /// strictly increasing.
  LineChart& add_series(std::string name, std::vector<double> xs, std::vector<double> ys);

  std::size_t num_series() const noexcept { return series_.size(); }

  std::string render_svg() const;
  void save(const std::string& path) const;

 private:
  ChartOptions options_;
  std::vector<Series> series_;
};

/// Chooses <= `max_ticks` human-friendly tick positions covering [lo, hi]
/// (1/2/5 x 10^k spacing). Exposed for tests.
std::vector<double> nice_ticks(double lo, double hi, int max_ticks = 6);

}  // namespace wrsn::viz
