#include "viz/chart.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wrsn::viz {
namespace {

const char* kPalette[] = {"#1b6ca8", "#c0392b", "#27ae60", "#8e44ad", "#e67e22", "#16a085"};

std::string format_tick(double v) {
  // Compact tick labels: strip trailing zeros of a %g rendering.
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::vector<double> nice_ticks(double lo, double hi, int max_ticks) {
  if (!(hi > lo)) return {lo};
  const double raw_step = (hi - lo) / std::max(1, max_ticks - 1);
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = magnitude;
  for (const double mult : {1.0, 2.0, 5.0, 10.0}) {
    if (magnitude * mult >= raw_step) {
      step = magnitude * mult;
      break;
    }
  }
  std::vector<double> ticks;
  const double start = std::ceil(lo / step) * step;
  for (double t = start; t <= hi + step * 1e-9; t += step) {
    // Snap near-zero artifacts of floating accumulation.
    ticks.push_back(std::fabs(t) < step * 1e-9 ? 0.0 : t);
  }
  return ticks;
}

LineChart::LineChart(ChartOptions options) : options_(std::move(options)) {}

LineChart& LineChart::add_series(std::string name, std::vector<double> xs,
                                 std::vector<double> ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("series needs equal-length non-empty xs/ys");
  }
  if (std::adjacent_find(xs.begin(), xs.end(),
                         [](double a, double b) { return b <= a; }) != xs.end()) {
    throw std::invalid_argument("series xs must be strictly increasing");
  }
  series_.push_back(Series{std::move(name), std::move(xs), std::move(ys)});
  return *this;
}

std::string LineChart::render_svg() const {
  if (series_.empty()) throw std::logic_error("chart has no series");

  double x_min = series_[0].xs.front();
  double x_max = series_[0].xs.back();
  double y_min = options_.y_from_zero ? 0.0 : series_[0].ys.front();
  double y_max = series_[0].ys.front();
  for (const Series& s : series_) {
    x_min = std::min(x_min, s.xs.front());
    x_max = std::max(x_max, s.xs.back());
    for (double y : s.ys) {
      y_min = std::min(y_min, options_.y_from_zero ? 0.0 : y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (y_max <= y_min) y_max = y_min + 1.0;
  y_max *= 1.05;  // headroom

  const double ml = 70.0;
  const double mr = 20.0;
  const double mt = options_.title.empty() ? 20.0 : 42.0;
  const double mb = 52.0;
  const double plot_w = options_.width_px - ml - mr;
  const double plot_h = options_.height_px - mt - mb;
  const auto px = [&](double x) { return ml + (x - x_min) / (x_max - x_min) * plot_w; };
  const auto py = [&](double y) { return mt + plot_h - (y - y_min) / (y_max - y_min) * plot_h; };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options_.width_px
      << "\" height=\"" << options_.height_px << "\">\n";
  svg << "  <rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n";
  if (!options_.title.empty()) {
    svg << "  <text x=\"" << options_.width_px / 2.0
        << "\" y=\"24\" font-size=\"15\" text-anchor=\"middle\" font-weight=\"bold\">"
        << options_.title << "</text>\n";
  }

  // Gridlines + ticks.
  for (double t : nice_ticks(y_min, y_max)) {
    const double y = py(t);
    svg << "  <line x1=\"" << ml << "\" y1=\"" << y << "\" x2=\"" << ml + plot_w << "\" y2=\""
        << y << "\" stroke=\"#eeeeee\"/>\n";
    svg << "  <text x=\"" << ml - 6 << "\" y=\"" << y + 4
        << "\" font-size=\"11\" text-anchor=\"end\">" << format_tick(t) << "</text>\n";
  }
  for (double t : nice_ticks(x_min, x_max)) {
    const double x = px(t);
    svg << "  <line x1=\"" << x << "\" y1=\"" << mt << "\" x2=\"" << x << "\" y2=\""
        << mt + plot_h << "\" stroke=\"#f4f4f4\"/>\n";
    svg << "  <text x=\"" << x << "\" y=\"" << mt + plot_h + 16
        << "\" font-size=\"11\" text-anchor=\"middle\">" << format_tick(t) << "</text>\n";
  }
  // Axes.
  svg << "  <line x1=\"" << ml << "\" y1=\"" << mt << "\" x2=\"" << ml << "\" y2=\""
      << mt + plot_h << "\" stroke=\"#333333\"/>\n";
  svg << "  <line x1=\"" << ml << "\" y1=\"" << mt + plot_h << "\" x2=\"" << ml + plot_w
      << "\" y2=\"" << mt + plot_h << "\" stroke=\"#333333\"/>\n";
  if (!options_.x_label.empty()) {
    svg << "  <text x=\"" << ml + plot_w / 2 << "\" y=\"" << options_.height_px - 12
        << "\" font-size=\"12\" text-anchor=\"middle\">" << options_.x_label << "</text>\n";
  }
  if (!options_.y_label.empty()) {
    svg << "  <text x=\"16\" y=\"" << mt + plot_h / 2
        << "\" font-size=\"12\" text-anchor=\"middle\" transform=\"rotate(-90 16 "
        << mt + plot_h / 2 << ")\">" << options_.y_label << "</text>\n";
  }

  // Series.
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const char* color = kPalette[s % std::size(kPalette)];
    svg << "  <polyline fill=\"none\" stroke=\"" << color << "\" stroke-width=\"2\" points=\"";
    for (std::size_t i = 0; i < series_[s].xs.size(); ++i) {
      svg << px(series_[s].xs[i]) << ',' << py(series_[s].ys[i]) << ' ';
    }
    svg << "\"/>\n";
    if (options_.markers) {
      for (std::size_t i = 0; i < series_[s].xs.size(); ++i) {
        svg << "  <circle cx=\"" << px(series_[s].xs[i]) << "\" cy=\"" << py(series_[s].ys[i])
            << "\" r=\"3\" fill=\"" << color << "\"/>\n";
      }
    }
  }

  // Legend (top-right corner of the plot area).
  const double legend_x = ml + plot_w - 170;
  double legend_y = mt + 12;
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const char* color = kPalette[s % std::size(kPalette)];
    svg << "  <line x1=\"" << legend_x << "\" y1=\"" << legend_y << "\" x2=\"" << legend_x + 22
        << "\" y2=\"" << legend_y << "\" stroke=\"" << color << "\" stroke-width=\"2\"/>\n";
    svg << "  <text x=\"" << legend_x + 28 << "\" y=\"" << legend_y + 4
        << "\" font-size=\"11\">" << series_[s].name << "</text>\n";
    legend_y += 16;
  }

  svg << "</svg>\n";
  return svg.str();
}

void LineChart::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os << render_svg();
}

}  // namespace wrsn::viz
