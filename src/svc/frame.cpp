#include "svc/frame.hpp"

#include <stdexcept>

namespace wrsn::svc {

std::string encode_frame(const io::Json& body) {
  std::string payload = body.dump();
  if (payload.size() > kMaxFrameBytes) {
    throw std::length_error("wrsn-rpc frame body exceeds kMaxFrameBytes (" +
                            std::to_string(payload.size()) + " bytes)");
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xFF));
  frame.push_back(static_cast<char>((length >> 16) & 0xFF));
  frame.push_back(static_cast<char>((length >> 8) & 0xFF));
  frame.push_back(static_cast<char>(length & 0xFF));
  frame += payload;
  return frame;
}

void FrameReader::feed(const char* data, std::size_t size) {
  if (failed_) return;  // stream already dead; drop bytes
  buffer_.append(data, size);
  // Reclaim decoded prefix bytes once they dominate the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

FrameReader::Result FrameReader::next(io::Json* out, std::string* error) {
  if (failed_) {
    if (error != nullptr) *error = error_;
    return Result::kError;
  }
  const auto fail = [&](std::string why) {
    failed_ = true;
    error_ = std::move(why);
    if (error != nullptr) *error = error_;
    return Result::kError;
  };

  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return Result::kNeedMore;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
  const std::uint32_t length = (static_cast<std::uint32_t>(p[0]) << 24) |
                               (static_cast<std::uint32_t>(p[1]) << 16) |
                               (static_cast<std::uint32_t>(p[2]) << 8) |
                               static_cast<std::uint32_t>(p[3]);
  if (length == 0) return fail("bad-frame: zero-length frame");
  if (length > max_frame_bytes_) {
    return fail("bad-frame: frame length " + std::to_string(length) + " exceeds limit " +
                std::to_string(max_frame_bytes_));
  }
  if (available < 4u + length) return Result::kNeedMore;

  const std::string_view payload(buffer_.data() + consumed_ + 4, length);
  try {
    io::Json parsed = io::Json::parse(payload);
    if (out != nullptr) *out = std::move(parsed);
  } catch (const io::JsonError& e) {
    return fail(std::string("bad-frame: body is not valid JSON: ") + e.what());
  }
  consumed_ += 4u + length;
  return Result::kFrame;
}

}  // namespace wrsn::svc
