// Blocking `wrsn-rpc v1` client: what loadgen_tool, the loopback tests, and
// the service bench speak through.  One Client owns one connected stream
// socket; call() writes a request frame and blocks until the matching
// response arrives, invoking an optional callback for every event frame
// (progress heartbeats) received in between.  Not thread-safe: one Client
// per client thread, mirroring how a real consumer multiplexes by opening
// connections, not by sharing one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "svc/frame.hpp"
#include "svc/protocol.hpp"

namespace wrsn::svc {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a unix-socket path.  Throws std::runtime_error on failure.
  static Client connect_unix(const std::string& path);
  /// Connects to a loopback TCP port.  Throws std::runtime_error on failure.
  static Client connect_tcp(int port);

  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Sends `{method, params}` (plus deadline/progress knobs when > 0) and
  /// blocks for the response frame.  Event frames received before it are
  /// passed to `on_event` (may be nullptr).  Returns the full response
  /// envelope -- `ok` true with `result`, or `ok` false with `error`; the
  /// caller inspects which.  Throws std::runtime_error when the connection
  /// breaks or the server answers with an unrecoverable framing error.
  io::Json call(const std::string& method, io::Json params, double deadline_s = 0.0,
                double progress_s = 0.0,
                const std::function<void(const io::Json&)>& on_event = nullptr);

  /// Requests issued so far (also the id generator).
  std::int64_t calls() const noexcept { return next_id_ - 1; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  void send_all(const std::string& bytes);

  int fd_ = -1;
  std::int64_t next_id_ = 1;
  FrameReader reader_;
};

}  // namespace wrsn::svc
