// `wrsn_serve`: the planning daemon behind examples/serve_tool.
//
// One Server owns up to two stream listeners (AF_UNIX + TCP), a reader
// thread per accepted connection, a bounded dispatch queue, and a fixed
// worker pool that executes `wrsn-rpc v1` requests (docs/service.md) against
// the fingerprint-keyed SessionCache.  The split of threads is deliberate:
//
//   * readers only decode frames and enqueue -- a slow solve never stops the
//     server from *reading* (and rejecting, and answering ping on) other
//     connections;
//   * util::ThreadPool stays what it is -- a deterministic fork-join pool
//     for data-parallel solver internals -- and is NOT used for dispatch:
//     request execution needs a task queue with back-pressure and deadlines,
//     which a barrier-synchronized parallel_for cannot express.  Solvers a
//     request launches still use their own pools internally.
//
// Deadlines are cooperative, not preemptive: a request is failed with
// `timeout` if its deadline passed while queued, or if it completed after
// the deadline (the reply is replaced by the error) -- a solve in flight is
// never interrupted.  Replies and progress event frames for one connection
// are serialized by a per-connection write lock, so concurrent workers never
// interleave bytes within a frame.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/frame.hpp"
#include "svc/protocol.hpp"
#include "svc/session_cache.hpp"

namespace wrsn::obs {
class ProgressSink;
}

namespace wrsn::svc {

struct ServerOptions {
  /// Unix-socket path to listen on; empty = no unix listener.  An existing
  /// socket file at the path is unlinked first (stale from a dead server).
  std::string unix_path;
  /// TCP port to listen on (loopback): < 0 = no TCP listener, 0 = ephemeral
  /// (read the chosen port back with Server::tcp_port()).
  int tcp_port = -1;
  /// Worker threads executing requests.  <= 0 = hardware concurrency.
  int workers = 2;
  /// SessionCache capacity (scenarios kept warm).
  std::size_t cache_capacity = 8;
  /// Dispatch queue bound; a request arriving on a full queue is rejected
  /// with `overloaded` instead of growing the queue without limit.
  std::size_t queue_capacity = 64;
  /// Deadline applied when a request does not set `deadline_s` itself.
  double default_deadline_s = 300.0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and launches the accept/worker threads.
  /// Throws std::runtime_error when a listener cannot be bound.
  void start();

  /// Initiates a graceful stop: listeners close, queued-but-unstarted
  /// requests are failed with `shutting-down`, in-flight requests finish
  /// and reply.  Safe to call from a worker (the `shutdown` method) or
  /// another thread; returns immediately.
  void request_stop();

  /// Blocks until a stop was requested and every thread has exited.
  void wait();

  /// request_stop() + wait().
  void stop();

  bool stopping() const noexcept { return stopping_.load(std::memory_order_acquire); }

  /// Bound TCP port (resolves ephemeral 0), or -1 without a TCP listener.
  int tcp_port() const noexcept { return bound_tcp_port_; }
  const std::string& unix_path() const noexcept { return options_.unix_path; }

  SessionCache& cache() noexcept { return cache_; }
  std::uint64_t requests_served() const noexcept { return requests_served_.load(); }
  std::uint64_t requests_failed() const noexcept { return requests_failed_.load(); }

 private:
  struct Connection {
    ~Connection();  ///< closes fd; runs only after the last Task released it
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> alive{true};
  };

  struct Task {
    std::shared_ptr<Connection> connection;
    Request request;
    std::chrono::steady_clock::time_point enqueued;
    double deadline_s = 0.0;
  };

  void accept_loop(int listen_fd);
  void reader_loop(std::shared_ptr<Connection> connection);
  void worker_loop();
  void execute(Task& task);
  /// Serializes `frame` and writes it to `connection` under its write lock.
  /// A failed write marks the connection dead (the peer is gone).
  static void write_frame(Connection& connection, const io::Json& frame);

  // Method handlers; each returns the result object or throws.
  io::Json handle_ping();
  io::Json handle_plan(const Request& request, obs::ProgressSink* progress);
  io::Json handle_evaluate(const Request& request);
  io::Json handle_simulate(const Request& request, obs::ProgressSink* progress);
  io::Json handle_place(const Request& request);

  ServerOptions options_;
  SessionCache cache_;
  int bound_tcp_port_ = -1;
  std::vector<int> listen_fds_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;

  /// A reader thread plus its exit flag.  A finished-but-unjoined thread
  /// still holds a kernel task, so a long-lived server must reap readers as
  /// connections close (accept_loop joins `done` readers on every accept)
  /// rather than letting handles pile up until wait().
  struct Reader {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  std::mutex threads_mutex_;
  std::vector<std::thread> accept_threads_;
  std::vector<std::unique_ptr<Reader>> readers_;
  std::vector<std::thread> worker_threads_;
  std::vector<std::weak_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_failed_{0};
};

}  // namespace wrsn::svc
