#include "svc/protocol.hpp"

#include <stdexcept>

#include "exp/spec.hpp"

namespace wrsn::svc {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad-frame";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kUnknownMethod: return "unknown-method";
    case ErrorCode::kBadParams: return "bad-params";
    case ErrorCode::kSolverReject: return "solver-reject";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

namespace {

io::Json envelope(std::int64_t id) {
  io::Json frame = io::Json::object();
  frame.set("rpc", io::Json(kRpcName));
  frame.set("v", io::Json(kRpcVersion));
  frame.set("id", io::Json(id));
  return frame;
}

}  // namespace

bool parse_request(const io::Json& frame, Request* out, std::string* error) {
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!frame.is_object()) return fail("request frame is not a JSON object");
  const io::Json* rpc = frame.find("rpc");
  if (rpc == nullptr || !rpc->is_string() || rpc->as_string() != kRpcName) {
    return fail("missing or wrong \"rpc\" (expected \"wrsn-rpc\")");
  }
  const io::Json* version = frame.find("v");
  if (version == nullptr || !version->is_number() || version->as_int() != kRpcVersion) {
    return fail("missing or unsupported \"v\" (this server speaks v1)");
  }
  const io::Json* id = frame.find("id");
  if (id == nullptr || !id->is_number()) return fail("missing or non-numeric \"id\"");
  const io::Json* method = frame.find("method");
  if (method == nullptr || !method->is_string() || method->as_string().empty()) {
    return fail("missing \"method\"");
  }
  Request request;
  try {
    request.id = id->as_int64();
  } catch (const io::JsonError&) {
    return fail("\"id\" is not a 64-bit integer");
  }
  request.method = method->as_string();
  if (const io::Json* deadline = frame.find("deadline_s"); deadline != nullptr) {
    if (!deadline->is_number()) return fail("\"deadline_s\" is not a number");
    request.deadline_s = deadline->as_double();
    if (request.deadline_s < 0.0) return fail("\"deadline_s\" is negative");
  }
  if (const io::Json* progress = frame.find("progress_s"); progress != nullptr) {
    if (!progress->is_number()) return fail("\"progress_s\" is not a number");
    request.progress_s = progress->as_double();
    if (request.progress_s < 0.0) return fail("\"progress_s\" is negative");
  }
  if (const io::Json* params = frame.find("params"); params != nullptr) {
    if (!params->is_object()) return fail("\"params\" is not an object");
    request.params = *params;
  } else {
    request.params = io::Json::object();
  }
  if (out != nullptr) *out = std::move(request);
  return true;
}

io::Json make_response(std::int64_t id, io::Json result) {
  io::Json frame = envelope(id);
  frame.set("ok", io::Json(true));
  frame.set("result", std::move(result));
  return frame;
}

io::Json make_error(std::int64_t id, ErrorCode code, const std::string& message) {
  io::Json frame = envelope(id);
  frame.set("ok", io::Json(false));
  io::Json error = io::Json::object();
  error.set("code", io::Json(error_code_name(code)));
  error.set("message", io::Json(message));
  frame.set("error", std::move(error));
  return frame;
}

io::Json make_event(std::int64_t id, const std::string& event, io::Json data) {
  io::Json frame = envelope(id);
  frame.set("event", io::Json(event));
  frame.set("data", std::move(data));
  return frame;
}

bool is_event_frame(const io::Json& frame) {
  return frame.is_object() && frame.contains("event");
}

io::Json Scenario::to_canonical_json() const {
  io::Json json = io::Json::object();
  json.set("posts", io::Json(posts));
  json.set("nodes", io::Json(nodes));
  json.set("side", io::Json(side));
  json.set("seed", io::Json(seed));
  json.set("levels", io::Json(levels));
  json.set("range_step", io::Json(range_step));
  json.set("eta", io::Json(eta));
  io::Json charging = io::Json::object();
  charging.set("kind", io::Json(charging_kind));
  charging.set("param", io::Json(charging_param));
  json.set("charging", std::move(charging));
  return json;
}

std::uint64_t Scenario::fingerprint() const {
  return exp::fingerprint_text(to_canonical_json().dump());
}

std::string Scenario::fingerprint_hex() const {
  return exp::SweepSpec::fingerprint_hex(fingerprint());
}

Scenario Scenario::from_json(const io::Json& json) {
  if (!json.is_object()) throw std::invalid_argument("scenario block must be an object");
  Scenario scenario;
  if (const io::Json* v = json.find("posts")) scenario.posts = v->as_int();
  if (const io::Json* v = json.find("nodes")) scenario.nodes = v->as_int();
  if (const io::Json* v = json.find("side")) scenario.side = v->as_double();
  if (const io::Json* v = json.find("seed")) scenario.seed = v->as_int64();
  if (const io::Json* v = json.find("levels")) scenario.levels = v->as_int();
  if (const io::Json* v = json.find("range_step")) scenario.range_step = v->as_double();
  if (const io::Json* v = json.find("eta")) scenario.eta = v->as_double();
  if (const io::Json* charging = json.find("charging")) {
    if (!charging->is_object()) throw std::invalid_argument("scenario \"charging\" must be an object");
    if (const io::Json* v = charging->find("kind")) scenario.charging_kind = v->as_string();
    if (const io::Json* v = charging->find("param")) scenario.charging_param = v->as_double();
  }
  for (const auto& [key, value] : json.as_object()) {
    (void)value;
    if (key != "posts" && key != "nodes" && key != "side" && key != "seed" &&
        key != "levels" && key != "range_step" && key != "eta" && key != "charging") {
      throw std::invalid_argument("unknown scenario key '" + key + "'");
    }
  }
  if (scenario.posts < 1) throw std::invalid_argument("scenario posts must be >= 1");
  if (scenario.nodes < scenario.posts) {
    throw std::invalid_argument("scenario nodes must be >= posts");
  }
  if (scenario.side <= 0.0) throw std::invalid_argument("scenario side must be > 0");
  if (scenario.levels < 1) throw std::invalid_argument("scenario levels must be >= 1");
  if (scenario.range_step <= 0.0) throw std::invalid_argument("scenario range_step must be > 0");
  if (scenario.eta <= 0.0) throw std::invalid_argument("scenario eta must be > 0");
  if (scenario.charging_kind != "linear" && scenario.charging_kind != "sublinear" &&
      scenario.charging_kind != "saturating") {
    throw std::invalid_argument("scenario charging kind must be linear|sublinear|saturating");
  }
  return scenario;
}

}  // namespace wrsn::svc
