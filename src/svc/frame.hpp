// `wrsn-rpc v1` wire framing: 4-byte big-endian length prefix + one JSON
// document (io::Json, compact dump) per frame.
//
// The service layer (docs/service.md) talks length-prefixed JSON over
// stream sockets.  Framing is deliberately the dumbest thing that works --
// no varints, no checksums, no compression -- because every payload is a
// small JSON object and the failure modes that matter (truncated stream,
// garbage bytes, hostile length) are all decidable from the prefix alone.
// `FrameReader` is a pure incremental decoder: feed it whatever the socket
// produced, pull complete frames out; it never blocks and never touches a
// file descriptor, so the codec is testable without a socket in sight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/json.hpp"

namespace wrsn::svc {

/// Hard cap on one frame's JSON body.  A length prefix above this is a
/// protocol error (the peer is broken or hostile), not a large request:
/// the reader reports it without ever allocating the claimed bytes.
inline constexpr std::uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

/// Encodes one frame: 4-byte big-endian body length, then the compact
/// (single-line) JSON dump.  Throws std::length_error when the dump would
/// exceed kMaxFrameBytes.
std::string encode_frame(const io::Json& body);

/// Incremental frame decoder.  Typical loop:
///
///   reader.feed(buf, n);                       // bytes from recv()
///   io::Json body; std::string error;
///   while (reader.next(&body, &error) == FrameReader::Result::kFrame) ...
///   if (error-state) close the connection;     // kError is sticky
class FrameReader {
 public:
  enum class Result {
    kFrame,     ///< one complete frame decoded into *out
    kNeedMore,  ///< prefix or body still incomplete; feed more bytes
    kError,     ///< unrecoverable stream error; *error says why
  };

  explicit FrameReader(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the stream.
  void feed(const char* data, std::size_t size);

  /// Tries to decode the next frame from the buffered bytes.  kError is
  /// sticky: a stream that produced an oversized length, a zero length, or
  /// an unparseable body has lost framing and must be torn down (there is
  /// no way to resynchronize a length-prefixed stream).
  Result next(io::Json* out, std::string* error);

  /// Bytes buffered but not yet consumed (diagnostics/tests).
  std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  std::uint32_t max_frame_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already decoded
  bool failed_ = false;
  std::string error_;
};

}  // namespace wrsn::svc
