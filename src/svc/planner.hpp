// The one planning pipeline behind both faces of the product: the
// `plan_tool` CLI and the `wrsn_serve` daemon (src/svc/server.hpp).
//
// plan_tool used to own this logic inline; the service refactor hoisted it
// here so a `plan` request over the wire runs the *same* field sampling,
// solver-spec fold-in, charger feasibility analysis, and report assembly as
// the CLI -- which is what makes the protocol's byte-identity contract
// testable (docs/service.md "Reports"): for the same scenario and solver
// spec, the daemon's `wrsn-report v1` text equals `plan_tool --report`
// output up to the trailing metrics section (process-global metrics are the
// one thing a warm daemon cannot reproduce for a fresh process).
#pragma once

#include <cstdint>
#include <string>

#include "core/instance.hpp"
#include "core/solver.hpp"
#include "geom/field.hpp"
#include "obs/report.hpp"
#include "sim/tour.hpp"
#include "svc/protocol.hpp"

namespace wrsn::svc {

/// Solve-stage knobs shared by plan_tool flags and `plan` request params.
/// Defaults mirror plan_tool's.
struct PlanOptions {
  std::string solver = "rfh+ls";  ///< core::SolverRegistry spec string
  int ls_threads = 1;             ///< folded into "+ls" specs as ls-threads=
  std::string ls_strategy = "first";
  int exact_threads = 1;          ///< folded into "exact" specs as threads=
  int exact_split_depth = 0;
  double exact_budget_s = 0.0;    ///< anytime budget; folded when > 0
  double charger_power_w = 10.0;
  double charger_speed_mps = 5.0;
  int bits_per_report = 4096;
};

/// Parses `options.solver` and folds the standalone knobs into the spec
/// unless the spec pins them itself ("+ls" specs gain ls-threads/
/// ls-strategy, "exact" gains threads/split_depth/budget) -- plan_tool's
/// historical fold-in, verbatim.  Throws std::invalid_argument on a
/// malformed spec.
core::SolverSpec resolve_solver_spec(const PlanOptions& options);

/// Samples a connected field exactly the way plan_tool does for generated
/// fields: one util::Rng seeded with `scenario.seed`, regenerate while
/// disconnected at the radio's max range, up to 1000 attempts.
geom::Field sample_field(const Scenario& scenario);

/// The scenario's charging model (linear | sublinear | saturating).
energy::ChargingModel make_charging(const Scenario& scenario);

/// Field -> full instance under the scenario's radio/charging/budget.
core::Instance build_instance(const Scenario& scenario);

/// One plan run's complete outcome: solution + cost + solver diagnostics,
/// plus the charger patrol analysis plan_tool reports alongside.
struct PlanOutcome {
  /// RoutingTree has no default state; a fresh outcome holds the trivial
  /// one-post tree until run_plan fills it.
  core::Solution solution{graph::RoutingTree(1, 1), {}};
  double cost_j_per_bit = 0.0;
  core::SolverDiagnostics diagnostics;
  std::string solver_canonical;  ///< resolved spec, canonical form
  sim::TourPlan tour;
  sim::PatrolFeasibility feasibility;
  int bits_per_report = 4096;  ///< traffic scale the feasibility used
};

/// Solves `instance` under the resolved spec and analyzes the single-charger
/// patrol.  Throws std::invalid_argument for bad solver specs (propagated
/// from the registry).  `sink`/`progress` may be nullptr.
PlanOutcome run_plan(const core::Instance& instance, const PlanOptions& options,
                     obs::Sink* sink, obs::ProgressSink* progress);

/// Appends the instance / solver / charger report sections exactly as
/// plan_tool emits them (same keys, same order, same skip of the verbose
/// rfh/iter_cost_* diagnostics).  `field_label` is "generated" for sampled
/// fields or the surveyed file path; `solver_label` is the spec string as
/// the user wrote it (the section reports the request, not the fold-in).
void add_plan_sections(obs::RunReport& report, const core::Instance& instance,
                       const PlanOutcome& outcome, const std::string& field_label,
                       std::int64_t seed, double eta, int bits_per_report,
                       const std::string& solver_label);

/// The daemon's report for a `plan` request: title "wrsn deployment plan",
/// the add_plan_sections body, then provenance -- i.e. plan_tool --report
/// with --sim-rounds 0, minus the metrics section.
std::string render_plan_report(const core::Instance& instance, const PlanOutcome& outcome,
                               const Scenario& scenario, const std::string& solver_label);

}  // namespace wrsn::svc
