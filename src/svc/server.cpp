#include "svc/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <functional>
#include <map>
#include <stdexcept>

#include "core/charger_placement.hpp"
#include "io/json_codec.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "sim/network_sim.hpp"
#include "svc/planner.hpp"

namespace wrsn::svc {

namespace {

obs::Counter& requests_counter() {
  static obs::Counter& counter = obs::Registry::global().counter("svc/requests");
  return counter;
}
obs::Counter& errors_counter() {
  static obs::Counter& counter = obs::Registry::global().counter("svc/errors");
  return counter;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge = obs::Registry::global().gauge("svc/queue_depth");
  return gauge;
}

/// A handler-level failure that maps to a protocol error reply.
struct RpcError {
  ErrorCode code;
  std::string message;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Relays `wrsn-progress v1` heartbeats to the requesting client as
/// {"event":"progress"} frames on the same connection, throttled per source
/// by the request's progress_s interval (final events always pass).
class FrameProgressSink : public obs::ProgressSink {
 public:
  FrameProgressSink(std::function<void(const io::Json&)> write, std::int64_t request_id,
                    double interval_s)
      : write_(std::move(write)), request_id_(request_id), interval_s_(interval_s) {}

  bool wants(const std::string& source) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return due(source);
  }

  void emit(const obs::ProgressEvent& event) override {
    io::Json data = io::Json::object();
    // Producer fields first, envelope keys last: a source field that happens
    // to be named "source"/"seq"/"t_s"/"final" must not clobber the envelope
    // metadata clients key on.
    for (const auto& [key, value] : event.fields) data.set(key, io::Json(value));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!event.final_event && !due(event.source)) return;
      SourceState& state = sources_[event.source];
      data.set("source", io::Json(event.source));
      data.set("seq", io::Json(static_cast<std::int64_t>(state.seq++)));
      data.set("t_s", io::Json(seconds_since(start_)));
      if (event.final_event) data.set("final", io::Json(true));
      state.last_s = seconds_since(start_);
      state.started = true;
    }
    write_(make_event(request_id_, "progress", std::move(data)));
  }

 private:
  struct SourceState {
    double last_s = 0.0;
    std::uint64_t seq = 0;
    bool started = false;
  };

  bool due(const std::string& source) {
    auto it = sources_.find(source);
    if (it == sources_.end() || !it->second.started) return true;
    return seconds_since(start_) - it->second.last_s >= interval_s_;
  }

  std::function<void(const io::Json&)> write_;
  std::int64_t request_id_;
  double interval_s_;
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
  std::mutex mutex_;
  std::map<std::string, SourceState> sources_;
};

/// Borrow/return RAII for a session's warm evaluation state.
class WarmGuard {
 public:
  explicit WarmGuard(Session& session) : session_(session), state_(session.borrow_warm()) {}
  ~WarmGuard() { session_.return_warm(std::move(state_)); }
  WarmState& operator*() noexcept { return *state_; }
  WarmState* operator->() noexcept { return state_.get(); }

 private:
  Session& session_;
  std::unique_ptr<WarmState> state_;
};

Scenario scenario_from_params(const io::Json& params) {
  try {
    const io::Json* block = params.find("scenario");
    return block != nullptr ? Scenario::from_json(*block) : Scenario{};
  } catch (const std::invalid_argument& e) {
    throw RpcError{ErrorCode::kBadParams, e.what()};
  } catch (const io::JsonError& e) {
    throw RpcError{ErrorCode::kBadParams, std::string("scenario: ") + e.what()};
  }
}

PlanOptions plan_options_from_params(const io::Json& params) {
  PlanOptions options;
  try {
    if (const io::Json* v = params.find("solver")) options.solver = v->as_string();
    if (const io::Json* v = params.find("ls_threads")) options.ls_threads = v->as_int();
    if (const io::Json* v = params.find("ls_strategy")) options.ls_strategy = v->as_string();
    if (const io::Json* v = params.find("exact_threads")) options.exact_threads = v->as_int();
    if (const io::Json* v = params.find("exact_split_depth")) {
      options.exact_split_depth = v->as_int();
    }
    if (const io::Json* v = params.find("exact_budget_s")) options.exact_budget_s = v->as_double();
    if (const io::Json* v = params.find("charger_power_w")) {
      options.charger_power_w = v->as_double();
    }
    if (const io::Json* v = params.find("charger_speed_mps")) {
      options.charger_speed_mps = v->as_double();
    }
    if (const io::Json* v = params.find("bits_per_report")) options.bits_per_report = v->as_int();
  } catch (const io::JsonError& e) {
    throw RpcError{ErrorCode::kBadParams, std::string("plan options: ") + e.what()};
  }
  return options;
}

bool bool_param(const io::Json& params, const char* key, bool fallback) {
  const io::Json* v = params.find(key);
  if (v == nullptr) return fallback;
  try {
    return v->as_bool();
  } catch (const io::JsonError&) {
    throw RpcError{ErrorCode::kBadParams, std::string("\"") + key + "\" must be a boolean"};
  }
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity) {}

Server::~Server() {
  if (started_.load()) stop();
}

void Server::start() {
  if (started_.exchange(true)) throw std::runtime_error("Server::start called twice");
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    throw std::runtime_error("Server needs a unix path or a TCP port to listen on");
  }

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("unix socket path too long: " + options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("cannot listen on unix socket " + options_.unix_path + ": " +
                               std::strerror(err));
    }
    listen_fds_.push_back(fd);
  }

  if (options_.tcp_port >= 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("cannot listen on TCP port " +
                               std::to_string(options_.tcp_port) + ": " + std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    listen_fds_.push_back(fd);
  }

  int workers = options_.workers;
  if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;

  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
  for (int i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
}

void Server::request_stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Closing the listeners makes accept() fail; shutting the connections
  // down unblocks every reader's recv().
  for (const int fd : listen_fds_) ::shutdown(fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (const auto& weak : connections_) {
    if (auto connection = weak.lock()) ::shutdown(connection->fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
}

void Server::wait() {
  // Collect the thread handles under the lock, join outside it (readers are
  // still being spawned until the accept threads exit).
  std::vector<std::thread> accepts;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    accepts.swap(accept_threads_);
  }
  for (std::thread& thread : accepts) thread.join();
  std::vector<std::unique_ptr<Reader>> readers;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    readers.swap(readers_);
  }
  for (const auto& reader : readers) reader->thread.join();
  queue_cv_.notify_all();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    workers.swap(worker_threads_);
  }
  for (std::thread& thread : workers) thread.join();
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void Server::stop() {
  request_stop();
  wait();
}

void Server::accept_loop(int listen_fd) {
  while (!stopping()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (stopping()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::lock_guard<std::mutex> lock(threads_mutex_);
    if (stopping()) break;  // Connection destructor closes fd
    // Prune dead weak_ptrs and reap exited readers so a long-lived server
    // does not accumulate them (an unjoined thread keeps its kernel task).
    std::erase_if(connections_, [](const auto& weak) { return weak.expired(); });
    connections_.push_back(connection);
    std::erase_if(readers_, [](const std::unique_ptr<Reader>& reader) {
      if (!reader->done.load(std::memory_order_acquire)) return false;
      reader->thread.join();
      return true;
    });
    auto reader = std::make_unique<Reader>();
    Reader* raw = reader.get();
    raw->thread = std::thread([this, connection, raw] {
      reader_loop(connection);
      raw->done.store(true, std::memory_order_release);
    });
    readers_.push_back(std::move(reader));
  }
}

void Server::reader_loop(std::shared_ptr<Connection> connection) {
  FrameReader reader;
  std::vector<char> buffer(64 * 1024);
  bool tear_down = false;
  while (!tear_down && !stopping()) {
    const ssize_t n = ::recv(connection->fd, buffer.data(), buffer.size(), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    reader.feed(buffer.data(), static_cast<std::size_t>(n));
    for (;;) {
      io::Json frame;
      std::string error;
      const FrameReader::Result result = reader.next(&frame, &error);
      if (result == FrameReader::Result::kNeedMore) break;
      if (result == FrameReader::Result::kError) {
        // Framing is unrecoverable: report and tear the connection down.
        write_frame(*connection, make_error(0, ErrorCode::kBadFrame, error));
        errors_counter().increment();
        tear_down = true;
        break;
      }
      Request request;
      std::string parse_error;
      if (!parse_request(frame, &request, &parse_error)) {
        // Echo the id when the frame at least carried a numeric one.
        std::int64_t id = 0;
        if (const io::Json* raw = frame.find("id"); raw != nullptr && raw->is_number()) {
          try {
            id = raw->as_int64();
          } catch (const io::JsonError&) {
          }
        }
        write_frame(*connection, make_error(id, ErrorCode::kBadRequest, parse_error));
        errors_counter().increment();
        continue;
      }
      Task task;
      task.connection = connection;
      task.request = std::move(request);
      task.enqueued = std::chrono::steady_clock::now();
      task.deadline_s =
          task.request.deadline_s > 0.0 ? task.request.deadline_s : options_.default_deadline_s;
      bool rejected = false;
      ErrorCode reject_code = ErrorCode::kOverloaded;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (stopping()) {
          rejected = true;
          reject_code = ErrorCode::kShuttingDown;
        } else if (queue_.size() >= options_.queue_capacity) {
          rejected = true;
        } else {
          queue_.push_back(std::move(task));
          queue_depth_gauge().set(static_cast<double>(queue_.size()));
        }
      }
      if (rejected) {
        write_frame(*connection,
                    make_error(task.request.id, reject_code,
                               reject_code == ErrorCode::kOverloaded
                                   ? "dispatch queue is full; retry later"
                                   : "server is shutting down"));
        errors_counter().increment();
        requests_failed_.fetch_add(1);
      } else {
        queue_cv_.notify_one();
      }
    }
  }
  // Mark dead and half-close; the fd itself stays open until the last Task
  // holding this Connection is done (the destructor closes it), so the fd
  // number cannot be reused out from under an in-flight reply.
  connection->alive.store(false);
  ::shutdown(connection->fd, SHUT_RDWR);
}

void Server::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping() || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping()) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    if (stopping()) {
      // Drain: queued-but-unstarted work is failed, not silently dropped.
      write_frame(*task.connection, make_error(task.request.id, ErrorCode::kShuttingDown,
                                               "server is shutting down"));
      errors_counter().increment();
      requests_failed_.fetch_add(1);
      continue;
    }
    execute(task);
  }
}

void Server::write_frame(Connection& connection, const io::Json& frame) {
  const std::string bytes = encode_frame(frame);
  std::lock_guard<std::mutex> lock(connection.write_mutex);
  if (!connection.alive.load()) return;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(connection.fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      connection.alive.store(false);  // peer is gone; drop the rest
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Server::execute(Task& task) {
  const Request& request = task.request;
  requests_counter().increment();

  const auto reply_error = [&](ErrorCode code, const std::string& message) {
    write_frame(*task.connection, make_error(request.id, code, message));
    errors_counter().increment();
    requests_failed_.fetch_add(1);
  };

  if (seconds_since(task.enqueued) > task.deadline_s) {
    reply_error(ErrorCode::kTimeout, "deadline expired while queued");
    return;
  }

  static const char* const kMethods[] = {"plan", "evaluate", "simulate", "place", "ping",
                                         "shutdown"};
  const bool known = std::any_of(std::begin(kMethods), std::end(kMethods),
                                 [&](const char* m) { return request.method == m; });
  if (!known) {
    reply_error(ErrorCode::kUnknownMethod,
                "unknown method '" + request.method +
                    "' (methods: plan evaluate simulate place ping shutdown)");
    return;
  }

  std::unique_ptr<FrameProgressSink> progress;
  if (request.progress_s > 0.0) {
    auto connection = task.connection;
    progress = std::make_unique<FrameProgressSink>(
        [this, connection](const io::Json& frame) { write_frame(*connection, frame); },
        request.id, request.progress_s);
  }

  io::Json result;
  try {
    if (request.method == "ping") {
      result = handle_ping();
    } else if (request.method == "shutdown") {
      result = io::Json::object();
      result.set("stopping", io::Json(true));
    } else if (request.method == "plan") {
      result = handle_plan(request, progress.get());
    } else if (request.method == "evaluate") {
      result = handle_evaluate(request);
    } else if (request.method == "simulate") {
      result = handle_simulate(request, progress.get());
    } else {
      result = handle_place(request);
    }
  } catch (const RpcError& e) {
    reply_error(e.code, e.message);
    return;
  } catch (const io::JsonError& e) {
    reply_error(ErrorCode::kBadParams, e.what());
    return;
  } catch (const std::exception& e) {
    reply_error(ErrorCode::kInternal, e.what());
    return;
  }

  const double elapsed_s = seconds_since(task.enqueued);
  if (elapsed_s > task.deadline_s) {
    // Completed, but too late to be useful: the contract is an error reply.
    reply_error(ErrorCode::kTimeout, "request completed after its deadline");
    return;
  }
  static obs::Registry& registry = obs::Registry::global();
  registry.histogram("svc/" + request.method + "_latency_ms").record(elapsed_s * 1e3);
  write_frame(*task.connection, make_response(request.id, std::move(result)));
  requests_served_.fetch_add(1);

  if (request.method == "shutdown") request_stop();
}

io::Json Server::handle_ping() {
  const CacheStats stats = cache_.stats();
  io::Json result = io::Json::object();
  result.set("pong", io::Json(true));
  result.set("requests", io::Json(requests_served()));
  result.set("failed", io::Json(requests_failed()));
  result.set("cache_hits", io::Json(stats.hits));
  result.set("cache_misses", io::Json(stats.misses));
  result.set("cache_evictions", io::Json(stats.evictions));
  result.set("cache_sessions", io::Json(static_cast<std::uint64_t>(cache_.size())));
  return result;
}

io::Json Server::handle_plan(const Request& request, obs::ProgressSink* progress) {
  const Scenario scenario = scenario_from_params(request.params);
  const PlanOptions options = plan_options_from_params(request.params);
  const bool want_report = bool_param(request.params, "report", true);
  const bool want_solution = bool_param(request.params, "solution", false);

  bool hit = false;
  std::shared_ptr<Session> session;
  try {
    session = cache_.acquire(scenario, &hit);
  } catch (const std::exception& e) {
    throw RpcError{ErrorCode::kBadParams, std::string("scenario infeasible: ") + e.what()};
  }

  PlanOutcome outcome;
  try {
    outcome = run_plan(session->instance(), options, nullptr, progress);
  } catch (const std::invalid_argument& e) {
    throw RpcError{ErrorCode::kSolverReject, e.what()};
  }

  io::Json result = io::Json::object();
  result.set("fingerprint", io::Json(scenario.fingerprint_hex()));
  result.set("cache", io::Json(hit ? "hit" : "miss"));
  result.set("solver", io::Json(outcome.solver_canonical));
  result.set("cost_j_per_bit", io::Json(outcome.cost_j_per_bit));
  result.set("feasible", io::Json(outcome.feasibility.feasible));
  result.set("tour_length_m", io::Json(outcome.tour.length_m));
  result.set("duty_cycle", io::Json(outcome.feasibility.duty));
  if (want_solution) result.set("solution", io::solution_to_json(outcome.solution));
  if (want_report) {
    result.set("report",
               io::Json(render_plan_report(session->instance(), outcome, scenario,
                                           options.solver)));
  }
  return result;
}

io::Json Server::handle_evaluate(const Request& request) {
  const Scenario scenario = scenario_from_params(request.params);
  const io::Json* deployments = request.params.find("deployments");
  if (deployments == nullptr || !deployments->is_array() || deployments->as_array().empty()) {
    throw RpcError{ErrorCode::kBadParams, "\"deployments\" must be a non-empty array of arrays"};
  }

  bool hit = false;
  std::shared_ptr<Session> session;
  try {
    session = cache_.acquire(scenario, &hit);
  } catch (const std::exception& e) {
    throw RpcError{ErrorCode::kBadParams, std::string("scenario infeasible: ") + e.what()};
  }
  const core::Instance& instance = session->instance();
  const int posts = instance.num_posts();

  WarmGuard warm(*session);
  std::int64_t incremental = 0;
  std::int64_t rebuilt = 0;
  io::Json costs = io::Json::array();

  for (const io::Json& entry : deployments->as_array()) {
    if (!entry.is_array() || static_cast<int>(entry.as_array().size()) != posts) {
      throw RpcError{ErrorCode::kBadParams,
                     "each deployment must list one node count per post (" +
                         std::to_string(posts) + " entries)"};
    }
    std::vector<int> deployment;
    deployment.reserve(static_cast<std::size_t>(posts));
    for (const io::Json& count : entry.as_array()) {
      const int m = count.as_int();
      if (m < 1) {
        throw RpcError{ErrorCode::kBadParams, "deployment counts must be >= 1 (every post"
                                              " needs a node)"};
      }
      deployment.push_back(m);
    }

    double cost = 0.0;
    core::DeploymentPricer* pricer = warm->pricer.get();
    if (pricer != nullptr) {
      // Classify the delta against the committed deployment: single-post
      // changes price by incremental shortest-path repair.
      const std::vector<int>& committed = pricer->deployment();
      std::vector<int> changed;
      for (int p = 0; p < posts; ++p) {
        if (committed[static_cast<std::size_t>(p)] != deployment[static_cast<std::size_t>(p)]) {
          changed.push_back(p);
        }
      }
      if (changed.empty()) {
        cost = pricer->base_cost();
        ++incremental;
      } else if (changed.size() == 1) {
        const int p = changed.front();
        const int before = committed[static_cast<std::size_t>(p)];
        const int after = deployment[static_cast<std::size_t>(p)];
        if (after == before + 1) {
          pricer->add_node(p);
          cost = pricer->base_cost();
          ++incremental;
        } else if (after == before - 1 && before >= 2) {
          pricer->remove_node(p);
          cost = pricer->base_cost();
          ++incremental;
        } else {
          pricer = nullptr;
        }
      } else if (changed.size() == 2) {
        const int a = changed[0];
        const int b = changed[1];
        const int da = deployment[static_cast<std::size_t>(a)] -
                       committed[static_cast<std::size_t>(a)];
        const int db = deployment[static_cast<std::size_t>(b)] -
                       committed[static_cast<std::size_t>(b)];
        if (da == -1 && db == 1 && committed[static_cast<std::size_t>(a)] >= 2) {
          pricer->move_node(a, b);
          cost = pricer->base_cost();
          ++incremental;
        } else if (da == 1 && db == -1 && committed[static_cast<std::size_t>(b)] >= 2) {
          pricer->move_node(b, a);
          cost = pricer->base_cost();
          ++incremental;
        } else {
          pricer = nullptr;
        }
      } else {
        pricer = nullptr;
      }
    }
    if (pricer == nullptr) {
      // Full (re)build: one fresh Dijkstra, buffers in the session arena.
      core::DeploymentPricer::Options pricer_options;
      pricer_options.arena = &warm->arena;
      warm->pricer = std::make_unique<core::DeploymentPricer>(instance, deployment,
                                                              pricer_options);
      cost = warm->pricer->base_cost();
      ++rebuilt;
    }
    costs.push_back(std::isfinite(cost) ? io::Json(cost) : io::Json());
  }

  io::Json result = io::Json::object();
  result.set("fingerprint", io::Json(scenario.fingerprint_hex()));
  result.set("cache", io::Json(hit ? "hit" : "miss"));
  result.set("costs", std::move(costs));
  result.set("incremental", io::Json(incremental));
  result.set("rebuilt", io::Json(rebuilt));
  return result;
}

io::Json Server::handle_simulate(const Request& request, obs::ProgressSink* progress) {
  const Scenario scenario = scenario_from_params(request.params);
  const PlanOptions options = plan_options_from_params(request.params);

  int rounds = 200;
  sim::NetworkConfig config;
  config.bits_per_report = options.bits_per_report;
  config.progress = progress;
  try {
    if (const io::Json* v = request.params.find("rounds")) rounds = v->as_int();
    if (const io::Json* v = request.params.find("battery_j")) {
      config.battery_capacity_j = v->as_double();
    }
    if (const io::Json* v = request.params.find("fault_seed")) {
      config.faults.seed = v->as_uint64();
    }
    if (const io::Json* v = request.params.find("post_hazard")) {
      config.faults.post_destruction_hazard = v->as_double();
    }
    if (const io::Json* v = request.params.find("node_hazard")) {
      config.faults.node_death_hazard = v->as_double();
    }
    if (const io::Json* v = request.params.find("link_hazard")) {
      config.faults.link_outage_hazard = v->as_double();
    }
    if (const io::Json* v = request.params.find("repair")) {
      config.repair = sim::repair_policy_from_name(v->as_string());
    }
  } catch (const std::invalid_argument& e) {
    throw RpcError{ErrorCode::kBadParams, e.what()};
  }
  if (rounds < 1) throw RpcError{ErrorCode::kBadParams, "\"rounds\" must be >= 1"};

  bool hit = false;
  std::shared_ptr<Session> session;
  try {
    session = cache_.acquire(scenario, &hit);
  } catch (const std::exception& e) {
    throw RpcError{ErrorCode::kBadParams, std::string("scenario infeasible: ") + e.what()};
  }

  PlanOutcome outcome;
  try {
    outcome = run_plan(session->instance(), options, nullptr, progress);
  } catch (const std::invalid_argument& e) {
    throw RpcError{ErrorCode::kSolverReject, e.what()};
  }

  sim::NetworkSim simulation(session->instance(), outcome.solution, config);
  simulation.run_rounds(static_cast<std::uint64_t>(rounds));

  double battery_min = 0.0;
  double battery_sum = 0.0;
  int battery_count = 0;
  for (const auto& post : simulation.posts()) {
    for (const auto& node : post.nodes) {
      battery_min = battery_count == 0 ? node.battery_j : std::min(battery_min, node.battery_j);
      battery_sum += node.battery_j;
      ++battery_count;
    }
  }

  io::Json result = io::Json::object();
  result.set("fingerprint", io::Json(scenario.fingerprint_hex()));
  result.set("cache", io::Json(hit ? "hit" : "miss"));
  result.set("solver", io::Json(outcome.solver_canonical));
  result.set("cost_j_per_bit", io::Json(outcome.cost_j_per_bit));
  result.set("rounds", io::Json(static_cast<std::uint64_t>(simulation.rounds_completed())));
  result.set("dead_nodes", io::Json(simulation.dead_node_count()));
  result.set("consumed_j", io::Json(simulation.total_consumed()));
  result.set("battery_min_j", io::Json(battery_min));
  result.set("battery_mean_j",
             io::Json(battery_count > 0 ? battery_sum / battery_count : 0.0));
  if (config.faults.enabled() || config.repair != sim::RepairPolicy::kNone) {
    result.set("delivery_ratio", io::Json(simulation.delivery_ratio()));
    result.set("faults_injected",
               io::Json(static_cast<std::uint64_t>(simulation.faults_injected())));
    result.set("destroyed_posts", io::Json(simulation.destroyed_post_count()));
    result.set("reroutes", io::Json(static_cast<std::uint64_t>(simulation.reroutes())));
  }
  return result;
}

io::Json Server::handle_place(const Request& request) {
  const Scenario scenario = scenario_from_params(request.params);
  const PlanOptions options = plan_options_from_params(request.params);

  core::PlacementConfig placement_config;
  placement_config.bits_per_round = options.bits_per_report;
  try {
    if (const io::Json* v = request.params.find("radius_m")) {
      placement_config.coverage_radius_m = v->as_double();
    }
    if (const io::Json* v = request.params.find("power_w")) {
      placement_config.radiated_power_w = v->as_double();
    }
    if (const io::Json* v = request.params.find("max_chargers")) {
      placement_config.max_chargers = v->as_int();
    }
    if (const io::Json* v = request.params.find("max_duty")) {
      placement_config.max_duty = v->as_double();
    }
    if (const io::Json* v = request.params.find("round_period_s")) {
      placement_config.round_period_s = v->as_double();
    }
  } catch (const io::JsonError& e) {
    throw RpcError{ErrorCode::kBadParams, std::string("placement params: ") + e.what()};
  }

  bool hit = false;
  std::shared_ptr<Session> session;
  try {
    session = cache_.acquire(scenario, &hit);
  } catch (const std::exception& e) {
    throw RpcError{ErrorCode::kBadParams, std::string("scenario infeasible: ") + e.what()};
  }

  PlanOutcome outcome;
  try {
    outcome = run_plan(session->instance(), options, nullptr, nullptr);
  } catch (const std::invalid_argument& e) {
    throw RpcError{ErrorCode::kSolverReject, e.what()};
  }

  core::PlacementResult placement;
  try {
    placement = core::place_chargers(session->instance(), outcome.solution, placement_config);
  } catch (const std::invalid_argument& e) {
    throw RpcError{ErrorCode::kBadParams, e.what()};
  }

  io::Json result = io::Json::object();
  result.set("fingerprint", io::Json(scenario.fingerprint_hex()));
  result.set("cache", io::Json(hit ? "hit" : "miss"));
  result.set("solver", io::Json(outcome.solver_canonical));
  result.set("cost_j_per_bit", io::Json(outcome.cost_j_per_bit));
  result.set("placement", io::placement_to_json(placement));
  return result;
}

}  // namespace wrsn::svc
