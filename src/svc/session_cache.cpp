#include "svc/session_cache.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "svc/planner.hpp"

namespace wrsn::svc {

namespace {

obs::Counter& cache_hits() {
  static obs::Counter& counter = obs::Registry::global().counter("svc/cache_hits");
  return counter;
}
obs::Counter& cache_misses() {
  static obs::Counter& counter = obs::Registry::global().counter("svc/cache_misses");
  return counter;
}
obs::Counter& cache_evictions() {
  static obs::Counter& counter = obs::Registry::global().counter("svc/cache_evictions");
  return counter;
}
obs::Gauge& cache_sessions() {
  static obs::Gauge& gauge = obs::Registry::global().gauge("svc/cache_sessions");
  return gauge;
}

}  // namespace

std::unique_ptr<WarmState> Session::borrow_warm() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      std::unique_ptr<WarmState> state = std::move(pool_.back());
      pool_.pop_back();
      return state;
    }
  }
  return std::make_unique<WarmState>();
}

void Session::return_warm(std::unique_ptr<WarmState> state) {
  if (state == nullptr) return;
  std::lock_guard<std::mutex> lock(pool_mutex_);
  pool_.push_back(std::move(state));
}

std::size_t Session::warm_pool_size() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_.size();
}

SessionCache::SessionCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ < 1) throw std::invalid_argument("SessionCache capacity must be >= 1");
}

std::shared_ptr<Session> SessionCache::acquire(const Scenario& scenario, bool* was_hit) {
  const std::uint64_t fingerprint = scenario.fingerprint();
  std::shared_future<std::shared_ptr<Session>> future;
  std::promise<std::shared_ptr<Session>> promise;
  bool build_here = false;
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      ++stats_.hits;
      cache_hits().increment();
      if (was_hit != nullptr) *was_hit = true;
      // Touch: move to the LRU front.
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      future = it->second.session;
    } else {
      ++stats_.misses;
      cache_misses().increment();
      if (was_hit != nullptr) *was_hit = false;
      build_here = true;
      future = promise.get_future().share();
      generation = ++next_generation_;
      lru_.push_front(fingerprint);
      entries_.emplace(fingerprint, Entry{future, lru_.begin(), generation});
      // Evict the coldest entry beyond capacity.  Holders of the evicted
      // shared_ptr (in-flight requests, still-building futures) keep it
      // alive; the cache just forgets it.
      while (entries_.size() > capacity_) {
        const std::uint64_t victim = lru_.back();
        lru_.pop_back();
        entries_.erase(victim);
        ++stats_.evictions;
        cache_evictions().increment();
      }
      cache_sessions().set(static_cast<double>(entries_.size()));
    }
  }
  if (!build_here) return future.get();

  // Build outside the lock so other fingerprints proceed; same-fingerprint
  // acquires block on the shared_future above.
  try {
    auto session = std::make_shared<Session>(scenario, build_instance(scenario));
    promise.set_value(session);
    return session;
  } catch (...) {
    promise.set_exception(std::current_exception());
    // Erase the poisoned entry so a retry of the same scenario rebuilds
    // instead of rethrowing the cached failure.  Only erase our own
    // generation: eviction may already have dropped it and another thread
    // re-inserted a healthy entry under the same fingerprint.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end() && it->second.generation == generation) {
      lru_.erase(it->second.lru);
      entries_.erase(it);
      cache_sessions().set(static_cast<double>(entries_.size()));
    }
    throw;
  }
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

CacheStats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace wrsn::svc
