// `wrsn-rpc v1` message grammar: request/response/error/event envelopes and
// the scenario-parameter block shared by every planning method.
//
// This header is the C++ twin of the normative spec in docs/service.md --
// anything that changes here changes there first.  The envelope helpers are
// pure Json-in/Json-out so the grammar is testable without a socket, and the
// scenario block canonicalizes to a fixed key order so its FNV-1a
// fingerprint (exp::fingerprint_text) is a stable session-cache key: two
// requests describe the same instance iff their canonical dumps are
// byte-identical.
#pragma once

#include <cstdint>
#include <string>

#include "io/json.hpp"

namespace wrsn::svc {

/// Protocol identity carried by every frame.
inline constexpr const char* kRpcName = "wrsn-rpc";
inline constexpr int kRpcVersion = 1;

/// Error codes (docs/service.md "Errors").  Stable strings, not numbers:
/// greppable in logs and self-describing on the wire.
enum class ErrorCode {
  kBadFrame,       ///< framing lost (length/JSON); connection is torn down
  kBadRequest,     ///< envelope malformed (missing id/method, wrong rpc/v)
  kUnknownMethod,  ///< method not in the method table
  kBadParams,      ///< params failed validation for this method
  kSolverReject,   ///< solver spec rejected by core::SolverRegistry
  kTimeout,        ///< deadline_s exceeded (queue wait or completed too late)
  kOverloaded,     ///< dispatch queue full; retry later
  kShuttingDown,   ///< server is stopping; no new work accepted
  kInternal,       ///< unexpected exception while serving the request
};

/// Wire form of an error code ("bad-frame", "timeout", ...).
const char* error_code_name(ErrorCode code);

/// One parsed request envelope.
struct Request {
  std::int64_t id = 0;        ///< client-chosen correlation id, echoed back
  std::string method;         ///< plan | evaluate | simulate | place | ping | shutdown
  double deadline_s = 0.0;    ///< 0 = server default
  double progress_s = 0.0;    ///< >0 = stream progress event frames at this interval
  io::Json params;            ///< method-specific block (object; may be absent)
};

/// Validates a decoded frame as a `wrsn-rpc v1` request.  Returns false and
/// fills *error when the envelope is malformed (wrong rpc/v, missing or
/// non-integer id, missing method, non-object params).
bool parse_request(const io::Json& frame, Request* out, std::string* error);

/// Success envelope: {"rpc","v","id","ok":true,"result":...}.
io::Json make_response(std::int64_t id, io::Json result);
/// Error envelope: {"rpc","v","id","ok":false,"error":{"code","message"}}.
io::Json make_error(std::int64_t id, ErrorCode code, const std::string& message);
/// Event frame (same stream, not a reply): {"rpc","v","id","event",<data>}.
/// Used for `wrsn-progress v1` heartbeats relayed as {"event":"progress"}.
io::Json make_event(std::int64_t id, const std::string& event, io::Json data);

/// Classifies a decoded frame on the client side.
bool is_event_frame(const io::Json& frame);

/// The scenario-parameter block: everything needed to rebuild the instance
/// plan_tool would build for the same flags (geometric field rejection-
/// sampled until connected, uniform-level radio, charging model, budget).
/// Defaults mirror plan_tool's so an empty {} scenario is valid.
struct Scenario {
  int posts = 40;
  int nodes = 160;
  double side = 300.0;
  std::int64_t seed = 1;
  int levels = 3;
  double range_step = 25.0;
  double eta = 0.01;
  std::string charging_kind = "linear";  ///< linear | sublinear | saturating
  double charging_param = 1.0;

  /// Canonical JSON: every key present, fixed order, lexical defaults --
  /// the fingerprint pre-image.  Two Scenarios with equal canonical dumps
  /// build bit-identical instances.
  io::Json to_canonical_json() const;
  /// exp::fingerprint_text over the canonical compact dump.
  std::uint64_t fingerprint() const;
  /// Lower-case 16-hex-digit form (exp::SweepSpec::fingerprint_hex).
  std::string fingerprint_hex() const;

  /// Reads a scenario block, applying defaults for absent keys.  Throws
  /// io::JsonError on type mismatches and std::invalid_argument on
  /// out-of-range values (posts < 1, nodes < posts, bad charging kind, ...).
  static Scenario from_json(const io::Json& json);
};

}  // namespace wrsn::svc
