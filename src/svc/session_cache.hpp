// Fingerprint-keyed LRU session cache: the daemon's reason to exist.
//
// A cold `plan`/`evaluate` request pays for scenario parsing, field
// rejection sampling, adjacency construction, and a fresh Dijkstra scratch;
// a warm request reuses all of it.  One `Session` owns the immutable parsed
// `core::Instance` for a scenario fingerprint plus a pool of per-worker
// warm state (BumpArena + CostEvalScratch + committed DeploymentPricer), so
// repeat traffic against the same scenario prices deployments with zero
// steady-state allocation and -- for single-post deltas -- by incremental
// shortest-path repair instead of a fresh Dijkstra (docs/service.md
// "Session cache", BENCH_service.json cold-vs-warm split).
//
// Concurrency contract: `acquire` is callable from every worker thread.
// Concurrent acquires of the same fingerprint build the instance once (the
// losers block on the builder's shared_future); eviction only drops the
// cache's reference, so in-flight requests holding the shared_ptr keep
// their session alive.  Warm states are borrowed/returned, never shared.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/cost.hpp"
#include "core/instance.hpp"
#include "core/pricer.hpp"
#include "svc/protocol.hpp"
#include "util/arena.hpp"

namespace wrsn::svc {

/// Per-worker warm evaluation state.  The arena backs both the Dijkstra
/// scratch and the pricer's repair buffers and is never reset while they
/// live (the arena grows to the instance's working set once, then stays).
struct WarmState {
  WarmState() : scratch(arena) {}

  util::BumpArena arena;
  core::CostEvalScratch scratch;
  /// Committed pricer from the last evaluate that used this state; rebuilt
  /// whenever a requested deployment is not a single-post delta from it.
  std::unique_ptr<core::DeploymentPricer> pricer;
};

/// One cached scenario: the parsed instance plus its warm-state pool.
class Session {
 public:
  Session(Scenario scenario, core::Instance instance)
      : scenario_(std::move(scenario)),
        fingerprint_(scenario_.fingerprint()),
        instance_(std::move(instance)) {}

  const Scenario& scenario() const noexcept { return scenario_; }
  const core::Instance& instance() const noexcept { return instance_; }
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// Pops a pooled warm state or creates a fresh one.  The pricer inside a
  /// pooled state is still committed to whatever deployment last used it.
  std::unique_ptr<WarmState> borrow_warm();
  /// Returns a warm state to the pool for the next borrower.
  void return_warm(std::unique_ptr<WarmState> state);
  std::size_t warm_pool_size() const;

 private:
  Scenario scenario_;
  std::uint64_t fingerprint_;
  core::Instance instance_;
  mutable std::mutex pool_mutex_;
  std::vector<std::unique_ptr<WarmState>> pool_;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// LRU map: scenario fingerprint -> shared Session.
class SessionCache {
 public:
  /// `capacity` >= 1: the number of sessions kept resident.
  explicit SessionCache(std::size_t capacity);

  /// Returns the session for `scenario`, building (and caching) it on a
  /// miss.  `*was_hit` (optional) reports whether this call found a cached
  /// or in-flight session.  A failed build (infeasible scenario) is erased
  /// before the exception propagates, so a later retry builds afresh.
  std::shared_ptr<Session> acquire(const Scenario& scenario, bool* was_hit = nullptr);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  CacheStats stats() const;

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<Session>> session;
    std::list<std::uint64_t>::iterator lru;  ///< position in lru_ (front = hottest)
    /// Distinguishes this insertion from any later re-insert of the same
    /// fingerprint, so a failed builder only erases its own entry.
    std::uint64_t generation = 0;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;
  std::uint64_t next_generation_ = 0;
  CacheStats stats_;
};

}  // namespace wrsn::svc
