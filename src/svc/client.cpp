#include "svc/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wrsn::svc {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    reader_ = std::move(other.reader_);
  }
  return *this;
}

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot connect to " + path + ": " + std::strerror(err));
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot connect to 127.0.0.1:" + std::to_string(port) + ": " +
                             std::strerror(err));
  }
  return Client(fd);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_all(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

io::Json Client::call(const std::string& method, io::Json params, double deadline_s,
                      double progress_s, const std::function<void(const io::Json&)>& on_event) {
  if (fd_ < 0) throw std::runtime_error("Client::call on a closed client");
  const std::int64_t id = next_id_++;

  io::Json request = io::Json::object();
  request.set("rpc", io::Json(kRpcName));
  request.set("v", io::Json(static_cast<std::int64_t>(kRpcVersion)));
  request.set("id", io::Json(id));
  request.set("method", io::Json(method));
  if (deadline_s > 0.0) request.set("deadline_s", io::Json(deadline_s));
  if (progress_s > 0.0) request.set("progress_s", io::Json(progress_s));
  request.set("params", std::move(params));
  send_all(encode_frame(request));

  std::vector<char> buffer(64 * 1024);
  for (;;) {
    io::Json frame;
    std::string error;
    const FrameReader::Result result = reader_.next(&frame, &error);
    if (result == FrameReader::Result::kError) {
      throw std::runtime_error("wrsn-rpc stream broken: " + error);
    }
    if (result == FrameReader::Result::kFrame) {
      if (is_event_frame(frame)) {
        if (on_event) on_event(frame);
        continue;
      }
      return frame;
    }
    const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
    if (n == 0) throw std::runtime_error("server closed the connection mid-call");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("recv failed: ") + std::strerror(errno));
    }
    reader_.feed(buffer.data(), static_cast<std::size_t>(n));
  }
}

}  // namespace wrsn::svc
