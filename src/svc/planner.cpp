#include "svc/planner.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/build_info.hpp"
#include "util/rng.hpp"

namespace wrsn::svc {

core::SolverSpec resolve_solver_spec(const PlanOptions& options) {
  core::SolverSpec spec = core::SolverSpec::parse(options.solver);
  const auto has_option = [&spec](const std::string& key) {
    return std::any_of(spec.options.begin(), spec.options.end(),
                       [&key](const auto& kv) { return kv.first == key; });
  };
  if (spec.name.ends_with("+ls")) {
    if (!has_option("ls-threads")) {
      spec.options.emplace_back("ls-threads", std::to_string(options.ls_threads));
    }
    if (!has_option("ls-strategy")) spec.options.emplace_back("ls-strategy", options.ls_strategy);
  }
  // Same fold-in for the exact solver's parallel/anytime knobs.
  if (spec.name == "exact") {
    if (!has_option("threads")) {
      spec.options.emplace_back("threads", std::to_string(options.exact_threads));
    }
    if (!has_option("split_depth")) {
      spec.options.emplace_back("split_depth", std::to_string(options.exact_split_depth));
    }
    if (!has_option("budget") && options.exact_budget_s > 0.0) {
      char budget_text[32];
      std::snprintf(budget_text, sizeof(budget_text), "%g", options.exact_budget_s);
      spec.options.emplace_back("budget", budget_text);
    }
  }
  return spec;
}

geom::Field sample_field(const Scenario& scenario) {
  const auto radio = energy::RadioModel::uniform_levels(scenario.levels, scenario.range_step);
  util::Rng rng(static_cast<std::uint64_t>(scenario.seed));
  geom::FieldConfig cfg;
  cfg.width = scenario.side;
  cfg.height = scenario.side;
  cfg.num_posts = scenario.posts;
  geom::Field field = geom::generate_field(cfg, rng);
  int attempts = 0;
  while (!geom::is_connected(field, radio.max_range()) && ++attempts < 1000) {
    field = geom::generate_field(cfg, rng);
  }
  if (!geom::is_connected(field, radio.max_range())) {
    throw std::runtime_error("could not sample a connected field for the scenario (1000 tries)");
  }
  return field;
}

energy::ChargingModel make_charging(const Scenario& scenario) {
  if (scenario.charging_kind == "linear") return energy::ChargingModel::linear(scenario.eta);
  if (scenario.charging_kind == "sublinear") {
    return energy::ChargingModel::sub_linear(scenario.eta, scenario.charging_param);
  }
  return energy::ChargingModel::saturating(scenario.eta, scenario.charging_param);
}

core::Instance build_instance(const Scenario& scenario) {
  const auto radio = energy::RadioModel::uniform_levels(scenario.levels, scenario.range_step);
  return core::Instance::geometric(sample_field(scenario), radio, make_charging(scenario),
                                   scenario.nodes);
}

PlanOutcome run_plan(const core::Instance& instance, const PlanOptions& options,
                     obs::Sink* sink, obs::ProgressSink* progress) {
  const core::SolverSpec spec = resolve_solver_spec(options);
  const std::unique_ptr<core::Solver> engine = core::SolverRegistry::global().create(spec);
  const core::SolverRun run = engine->solve(instance, sink, progress);

  PlanOutcome outcome;
  outcome.solution = run.solution;
  outcome.cost_j_per_bit = run.cost;
  outcome.diagnostics = run.diagnostics;
  outcome.solver_canonical = spec.canonical();

  sim::ChargerConfig charger;
  charger.radiated_power_w = options.charger_power_w;
  charger.speed_mps = options.charger_speed_mps;
  outcome.feasibility =
      sim::analyze_patrol(instance, outcome.solution, charger, options.bits_per_report);
  outcome.tour = sim::plan_tour(instance);
  outcome.bits_per_report = options.bits_per_report;
  return outcome;
}

void add_plan_sections(obs::RunReport& report, const core::Instance& instance,
                       const PlanOutcome& outcome, const std::string& field_label,
                       std::int64_t seed, double eta, int bits_per_report,
                       const std::string& solver_label) {
  report.begin_section("instance")
      .add("posts", instance.num_posts())
      .add("nodes", instance.num_nodes())
      .add("field", field_label)
      .add("seed", seed)
      .add("eta", eta)
      .add("bits_per_report", bits_per_report);
  report.begin_section("solver").add("name", solver_label);
  for (const auto& [key, value] : outcome.diagnostics.items) {
    if (key.rfind("rfh/iter_cost_", 0) == 0) continue;  // keep the report compact
    report.add(key, value);
  }
  report.add("cost_j_per_bit", outcome.cost_j_per_bit);
  report.begin_section("charger")
      .add("tour_length_m", outcome.tour.length_m)
      .add("demand_w", outcome.feasibility.demand_w)
      .add("duty_cycle", outcome.feasibility.duty)
      .add("feasible", outcome.feasibility.feasible);
  if (outcome.feasibility.feasible) {
    report.add("cycle_time_s", outcome.feasibility.cycle_time_s)
        .add("min_battery_j", outcome.feasibility.min_battery_capacity_j);
  }
}

std::string render_plan_report(const core::Instance& instance, const PlanOutcome& outcome,
                               const Scenario& scenario, const std::string& solver_label) {
  obs::RunReport report("wrsn deployment plan");
  add_plan_sections(report, instance, outcome, "generated", scenario.seed, scenario.eta,
                    outcome.bits_per_report, solver_label);
  obs::add_provenance(report);
  std::ostringstream os;
  report.write(os);
  return os.str();
}

}  // namespace wrsn::svc
