#include "energy/charging_model.hpp"

#include <cmath>

namespace wrsn::energy {

ChargingModel::ChargingModel(double eta, ChargingKind kind, double param)
    : eta_(eta), kind_(kind), param_(param) {
  if (!(eta > 0.0) || !(eta < 1.0)) {
    throw std::invalid_argument("charging efficiency eta must be in (0, 1)");
  }
  if (kind == ChargingKind::SubLinear && (param <= 0.0 || param > 1.0)) {
    throw std::invalid_argument("sub-linear exponent must be in (0, 1]");
  }
  if (kind == ChargingKind::Saturating && param < 1.0) {
    throw std::invalid_argument("saturating cap must be >= 1");
  }
}

double ChargingModel::gain(int m) const {
  if (m < 1) throw std::invalid_argument("a post always holds at least one node");
  switch (kind_) {
    case ChargingKind::Linear:
      return static_cast<double>(m);
    case ChargingKind::SubLinear:
      return std::pow(static_cast<double>(m), param_);
    case ChargingKind::Saturating: {
      // k(1) = 1 and k(m) -> cap monotonically.
      const double cap = param_;
      return cap * (1.0 - std::pow(1.0 - 1.0 / cap, static_cast<double>(m)));
    }
  }
  return static_cast<double>(m);
}

}  // namespace wrsn::energy
