// First-order radio energy model with discrete transmit power levels.
//
// Paper, Eq. (1):   e_t = alpha + beta * d^gamma,   e_r = alpha
// with alpha = 50 nJ/bit, beta = 0.0013 pJ/bit/m^4, gamma = 4 (Heinzelman et
// al.).  A node chooses one of k levels l_1..l_k reaching distances
// d_1..d_k; transmitting one bit at level i costs e_i = alpha + beta*d_i^gamma.
//
// The NP-completeness gadget (Section IV) needs a radio whose level energies
// are prescribed directly (4*e1 = e2, receive cost e0 < e1), so the model
// also supports explicit per-level energies decoupled from geometry.
#pragma once

#include <optional>
#include <vector>

namespace wrsn::energy {

/// Physical-layer constants of Eq. (1).
struct RadioParams {
  double alpha = 50e-9;       ///< J/bit, transceiver circuitry
  double beta = 0.0013e-12;   ///< J/bit/m^gamma, amplifier
  double gamma = 4.0;         ///< path-loss exponent (2..4)
};

/// Discrete-power radio: k levels, each with a range and a per-bit energy.
class RadioModel {
 public:
  /// Radio with ranges {step, 2*step, ..., k*step} meters (paper default:
  /// step = 25 m, k = 3 or 6) and energies from Eq. (1).
  static RadioModel uniform_levels(int k, double step = 25.0, RadioParams params = {});

  /// Radio with the given explicit ranges (ascending) and Eq. (1) energies.
  static RadioModel from_ranges(std::vector<double> ranges, RadioParams params = {});

  /// Abstract radio with prescribed per-level energies and receive energy;
  /// ranges are synthetic (level index + 1) and only used for ordering.
  /// Used by the NP-completeness gadget where reachability is explicit.
  static RadioModel from_energies(std::vector<double> tx_energies, double rx_energy);

  int num_levels() const noexcept { return static_cast<int>(ranges_.size()); }
  /// Range of level `level` (0-based) in meters.
  double range(int level) const;
  /// Per-bit transmit energy of level `level` (0-based), in joules.
  double tx_energy(int level) const;
  /// Per-bit receive energy, in joules.
  double rx_energy() const noexcept { return rx_energy_; }
  double max_range() const noexcept { return ranges_.back(); }
  const RadioParams& params() const noexcept { return params_; }

  /// Smallest level whose range covers `distance_m`, or nullopt when even
  /// the maximum power cannot reach it.
  std::optional<int> min_level_for_distance(double distance_m) const noexcept;

  /// Per-bit energy to transmit across `distance_m` with the cheapest
  /// feasible level, or nullopt when unreachable.  This is the edge-weight
  /// function w(v_i, v_j) of RFH Phase I.
  std::optional<double> tx_energy_for_distance(double distance_m) const noexcept;

 private:
  RadioModel(std::vector<double> ranges, std::vector<double> tx_energies, double rx_energy,
             RadioParams params);

  std::vector<double> ranges_;       // ascending
  std::vector<double> tx_energies_;  // ascending with ranges
  double rx_energy_ = 0.0;
  RadioParams params_{};
};

}  // namespace wrsn::energy
