// Wireless charging efficiency model (Sections II and III).
//
// The field experiment shows that when a charger recharges m co-located
// sensors simultaneously, each still receives roughly the single-sensor
// share, so the *network* charging efficiency is eta(m) = k(m) * eta with
// k(m) linear or sub-linear in m.  The paper's quantitative analysis takes
// k(m) = m; we also provide sub-linear and saturating variants so benches
// can probe sensitivity to that modelling choice (ablation A3 in DESIGN.md).
#pragma once

#include <stdexcept>

namespace wrsn::energy {

/// Shape of the simultaneous-charging gain k(m).
enum class ChargingKind {
  Linear,      ///< k(m) = m                      (paper's assumption)
  SubLinear,   ///< k(m) = m^exponent, 0<exponent<=1
  Saturating,  ///< k(m) = cap * (1 - (1-1/cap)^m)  -> approaches `cap`
};

/// Charging efficiency model: maps a post's node count m to the fraction of
/// charger-radiated energy that the post's nodes collectively absorb.
class ChargingModel {
 public:
  /// `eta` is the single-node efficiency (0 < eta < 1), e.g. ~0.008 at 20 cm
  /// from the field experiment.  Parameters: SubLinear -> exponent,
  /// Saturating -> cap (both ignored for Linear).
  explicit ChargingModel(double eta, ChargingKind kind = ChargingKind::Linear,
                         double param = 1.0);

  static ChargingModel linear(double eta) { return ChargingModel(eta); }
  static ChargingModel sub_linear(double eta, double exponent) {
    return ChargingModel(eta, ChargingKind::SubLinear, exponent);
  }
  static ChargingModel saturating(double eta, double cap) {
    return ChargingModel(eta, ChargingKind::Saturating, cap);
  }

  double eta() const noexcept { return eta_; }
  ChargingKind kind() const noexcept { return kind_; }
  /// Shape parameter (SubLinear exponent or Saturating cap; 1.0 for Linear).
  double param() const noexcept { return param_; }

  /// The gain factor k(m); k(1) == 1 for every kind.
  double gain(int m) const;

  /// Network charging efficiency eta(m) = k(m) * eta.
  double efficiency(int m) const { return gain(m) * eta_; }

  /// Charger energy required to deliver `energy_j` joules into a post
  /// holding `m` nodes: energy / (k(m) * eta).  This is the "recharging
  /// cost" of replenishing that much consumption.
  double charger_energy_for(double energy_j, int m) const { return energy_j / efficiency(m); }

 private:
  double eta_;
  ChargingKind kind_;
  double param_;
};

}  // namespace wrsn::energy
