#include "energy/radio_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wrsn::energy {

RadioModel::RadioModel(std::vector<double> ranges, std::vector<double> tx_energies,
                       double rx_energy, RadioParams params)
    : ranges_(std::move(ranges)),
      tx_energies_(std::move(tx_energies)),
      rx_energy_(rx_energy),
      params_(params) {
  if (ranges_.empty() || ranges_.size() != tx_energies_.size()) {
    throw std::invalid_argument("RadioModel requires matching non-empty level vectors");
  }
  if (!std::is_sorted(ranges_.begin(), ranges_.end())) {
    throw std::invalid_argument("RadioModel ranges must be ascending");
  }
  if (!std::is_sorted(tx_energies_.begin(), tx_energies_.end())) {
    throw std::invalid_argument("RadioModel level energies must be ascending");
  }
  if (ranges_.front() <= 0.0) throw std::invalid_argument("RadioModel ranges must be positive");
}

RadioModel RadioModel::uniform_levels(int k, double step, RadioParams params) {
  if (k <= 0) throw std::invalid_argument("RadioModel needs at least one level");
  std::vector<double> ranges(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) ranges[static_cast<std::size_t>(i)] = step * (i + 1);
  return from_ranges(std::move(ranges), params);
}

RadioModel RadioModel::from_ranges(std::vector<double> ranges, RadioParams params) {
  std::vector<double> energies(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    energies[i] = params.alpha + params.beta * std::pow(ranges[i], params.gamma);
  }
  return RadioModel(std::move(ranges), std::move(energies), params.alpha, params);
}

RadioModel RadioModel::from_energies(std::vector<double> tx_energies, double rx_energy) {
  std::vector<double> ranges(tx_energies.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) ranges[i] = static_cast<double>(i + 1);
  return RadioModel(std::move(ranges), std::move(tx_energies), rx_energy, RadioParams{});
}

double RadioModel::range(int level) const {
  return ranges_.at(static_cast<std::size_t>(level));
}

double RadioModel::tx_energy(int level) const {
  return tx_energies_.at(static_cast<std::size_t>(level));
}

std::optional<int> RadioModel::min_level_for_distance(double distance_m) const noexcept {
  const auto it = std::lower_bound(ranges_.begin(), ranges_.end(), distance_m);
  if (it == ranges_.end()) return std::nullopt;
  return static_cast<int>(it - ranges_.begin());
}

std::optional<double> RadioModel::tx_energy_for_distance(double distance_m) const noexcept {
  const auto level = min_level_for_distance(distance_m);
  if (!level) return std::nullopt;
  return tx_energies_[static_cast<std::size_t>(*level)];
}

}  // namespace wrsn::energy
