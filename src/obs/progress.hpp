// Streaming progress heartbeats: the `wrsn-progress v1` NDJSON stream long-
// running components (exact B&B, local search, the experiment runner, the
// network simulator) emit through while they work, so a run is observable
// *live* instead of only post-mortem through metrics/report dumps.
//
// The split of responsibilities keeps wall-clock out of algorithm logic:
// components decide *what* a heartbeat says and offer one whenever they pass
// a natural emission point (a new incumbent, a finished pass, a completed
// trial, a simulated round); the sink decides *whether* it is due, by wall
// clock.  Hot loops pre-check `wants(source)` so a throttled heartbeat costs
// one mutex-free-ish query instead of building the event:
//
//   if (progress != nullptr && progress->wants("exact")) {
//     ProgressEvent event("exact");
//     event.add("incumbent", best_cost);
//     progress->emit(event);
//   }
//
// Events flagged `final` bypass throttling, so every stream ends with the
// component's closing totals.  The byte-level grammar is specified in
// docs/formats.md (one JSON object per line; field order = add() order).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wrsn::obs {

/// One heartbeat: a source tag plus ordered numeric facts.  Sources are
/// short whitespace-free tokens ("exact", "ls", "exp", "sim"); keys follow
/// metric-name rules (docs/observability.md).
struct ProgressEvent {
  explicit ProgressEvent(std::string source_tag, bool is_final = false)
      : source(std::move(source_tag)), final_event(is_final) {}

  ProgressEvent& add(std::string key, double value) {
    fields.emplace_back(std::move(key), value);
    return *this;
  }

  std::string source;
  bool final_event = false;  ///< closing event; sinks must not throttle it
  std::vector<std::pair<std::string, double>> fields;
};

/// Observer interface components hold a non-owning pointer to (nullptr =
/// no progress reporting, the default everywhere).  Implementations must be
/// thread-safe: the experiment runner and parallel local search emit from
/// pool workers.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;

  /// Cheap pre-check: false when a non-final heartbeat from `source` would
  /// be dropped right now, so emitters can skip building the event.  Purely
  /// advisory -- emit() re-checks.
  virtual bool wants(const std::string& source) = 0;

  virtual void emit(const ProgressEvent& event) = 0;
};

/// Appends every event verbatim (no throttling); the test workhorse.
class RecordingProgressSink : public ProgressSink {
 public:
  bool wants(const std::string&) override { return true; }
  void emit(const ProgressEvent& event) override {
    std::lock_guard<std::mutex> lock(mutex_);
    events.push_back(event);
  }

  /// Events from one source, in emission order.
  std::vector<ProgressEvent> from(const std::string& source) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ProgressEvent> out;
    for (const ProgressEvent& event : events) {
      if (event.source == source) out.push_back(event);
    }
    return out;
  }

  std::vector<ProgressEvent> events;

 private:
  mutable std::mutex mutex_;
};

class MetricsSeries;

/// Writes `wrsn-progress v1` NDJSON lines to a stream, throttled per source
/// by wall-clock interval: the first heartbeat of a source, anything after
/// `min_interval_s` of silence, and every final event get through; the rest
/// are counted and dropped.  Thread-safe; one line is written atomically
/// under the sink's lock.  A nullptr stream keeps all the bookkeeping (seq
/// numbers, attached series sampling) but writes nothing -- the
/// --metrics-series-without---progress configuration.
class StreamProgressSink : public ProgressSink {
 public:
  explicit StreamProgressSink(std::ostream* os, double min_interval_s = 0.5);

  bool wants(const std::string& source) override;
  void emit(const ProgressEvent& event) override;

  /// Also take one MetricsSeries sample per accepted heartbeat (non-owned;
  /// the series applies its own min-interval on top).  Gives CLIs a
  /// time-series substrate at the same cadence as the progress stream.
  void attach_series(MetricsSeries* series) { series_ = series; }

  std::uint64_t emitted() const;
  std::uint64_t dropped() const;

 private:
  struct SourceState {
    std::int64_t last_ns = 0;
    std::uint64_t seq = 0;
    bool started = false;
  };

  bool due(const SourceState& state, std::int64_t now_ns) const noexcept;

  std::ostream* os_;
  MetricsSeries* series_ = nullptr;
  double min_interval_s_;
  std::int64_t start_ns_;
  mutable std::mutex mutex_;
  std::map<std::string, SourceState> sources_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Formats one event as its NDJSON line (no trailing newline); exposed so
/// tests can pin the grammar without a sink.  `seq` and `t_s` become the
/// "seq" / "t_s" fields.
std::string format_progress_line(const ProgressEvent& event, std::uint64_t seq, double t_s);

}  // namespace wrsn::obs
