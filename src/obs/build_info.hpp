// Build provenance: the facts that tie an artifact back to the exact code
// that produced it.
//
// Reports, benchmark baselines, and traces outlive the working tree they
// came from; without the git SHA and build type stamped inside them, a
// "regression" in CI can be a debug-vs-release comparison and nobody can
// tell.  CMake injects WRSN_GIT_SHA (configure-time `git rev-parse`,
// "unknown" outside a checkout) into build_info.cpp only, so touching the
// SHA never rebuilds the world.
#pragma once

#include <string>

namespace wrsn::obs {

class RunReport;

struct BuildInfo {
  std::string git_sha;     ///< short commit hash, or "unknown"
  std::string build_type;  ///< "release" or "debug" (NDEBUG + optimizer test)
};

/// The compiled-in provenance of this binary.
const BuildInfo& build_info();

/// Appends a "provenance" section to `report`: git SHA, build type, and the
/// schema versions of every artifact format this binary writes.  Explicitly
/// opt-in (tools call it; RunReport itself does not) so tests pinning exact
/// report bytes stay stable.
void add_provenance(RunReport& report);

}  // namespace wrsn::obs
