// Solver/simulator event sink: the one interface RFH, IDB, local search and
// the network simulator report progress through.
//
// Event structs carry plain numbers only, so `obs` stays below `core`/`sim`
// in the layering (util -> obs -> ... -> core -> sim) and any consumer --
// benches, the planning CLI, future adaptive-charging policies -- can
// observe a run without re-deriving solver internals.  The base `Sink` is a
// no-op; passing nullptr (the options default everywhere) costs a branch.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace wrsn::obs {

/// One RFH iteration (phases I-IV) finished.
struct RfhIterationEvent {
  int iteration = 0;        ///< 0-based
  double cost = 0.0;        ///< total recharging cost after this iteration
  double best_cost = 0.0;   ///< best cost over iterations so far (<= cost)
  int fat_tree_edges = 0;   ///< Phase I DAG parent edges before trimming
};

/// Local search priced one candidate move (node `from_post` -> `to_post`).
struct LocalSearchMoveEvent {
  int pass = 0;             ///< 0-based improvement pass
  int from_post = 0;
  int to_post = 0;
  double old_cost = 0.0;    ///< incumbent cost before the move
  double new_cost = 0.0;    ///< candidate cost (accepted => new incumbent)
  bool accepted = false;

  double improvement() const noexcept { return old_cost - new_cost; }
};

/// Local search finished one full scan over the move neighborhood.
struct LocalSearchPassEvent {
  int pass = 0;
  std::uint64_t evaluated = 0;  ///< candidates priced during this pass
  int accepted = 0;             ///< moves kept during this pass
  double cost = 0.0;            ///< incumbent cost after the pass
};

/// Local search finished a whole run (refine_solution returned).
struct LocalSearchRunEvent {
  int threads = 1;                         ///< workers used (1 = serial)
  bool best_improvement = false;           ///< strategy: best- vs first-improvement
  std::uint64_t evaluations = 0;           ///< candidates whose price was consulted
  std::uint64_t wasted_evaluations = 0;    ///< speculative prices discarded by rewinds
  int passes = 0;
  int moves_applied = 0;
};

/// IDB committed one round (delta nodes placed).
struct IdbRoundEvent {
  int round = 0;                  ///< 0-based
  double cost = 0.0;              ///< committed deployment's cost
  std::uint64_t evaluations = 0;  ///< cumulative candidates priced so far
};

/// The network simulator completed one reporting round.  The trailing
/// resilience fields stay zero when fault injection is off.
struct SimRoundEvent {
  std::uint64_t round = 0;       ///< 1-based round count after this round
  double consumed_j = 0.0;       ///< energy drawn across all posts this round
  int dead_nodes = 0;            ///< cumulative dead nodes
  double battery_min_j = 0.0;    ///< min residual battery across all nodes
  double battery_mean_j = 0.0;   ///< mean residual battery across all nodes
  double delivered_bits = 0.0;   ///< bits that reached the base this round
  double dropped_bits = 0.0;     ///< bits dropped this round (backlog overflow/loss)
  double backlog_bits = 0.0;     ///< bits buffered in orphaned subtrees right now
  int faults = 0;                ///< faults injected this round
  int reroutes = 0;              ///< routing-tree parent changes this round
};

/// The fault model injected one fault into the running simulation.
struct SimFaultEvent {
  std::uint64_t round = 0;       ///< 1-based round in which the fault landed
  int kind = 0;                  ///< 0 = post destroyed, 1 = node death, 2 = link outage
  int post = 0;
  int duration_rounds = 0;       ///< outage length; 0 for permanent faults
};

/// A previously disconnected post regained a path to the base station
/// (rerouted around the damage, outage expired, or maintenance visit).
struct SimRepairEvent {
  std::uint64_t round = 0;             ///< 1-based round of the reconnection
  int post = 0;
  std::uint64_t latency_rounds = 0;    ///< rounds the post spent disconnected
};

/// A charging policy dispatched a mobile charger (sim/charger_sim.hpp).
struct ChargerDispatchEvent {
  std::uint64_t round = 0;         ///< rounds completed when the order was issued
  double time_s = 0.0;             ///< simulation time of the dispatch
  int charger = 0;
  int post = 0;
  double deficit_fraction = 0.0;   ///< post's min battery fraction at dispatch
  double distance_m = 0.0;         ///< travel distance of this dispatch
};

/// Observer interface; every handler defaults to a no-op so sinks override
/// only what they care about.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_rfh_iteration(const RfhIterationEvent&) {}
  virtual void on_local_search_move(const LocalSearchMoveEvent&) {}
  virtual void on_local_search_pass(const LocalSearchPassEvent&) {}
  virtual void on_local_search_run(const LocalSearchRunEvent&) {}
  virtual void on_idb_round(const IdbRoundEvent&) {}
  virtual void on_sim_round(const SimRoundEvent&) {}
  virtual void on_sim_fault(const SimFaultEvent&) {}
  virtual void on_sim_repair(const SimRepairEvent&) {}
  virtual void on_charger_dispatch(const ChargerDispatchEvent&) {}
};

/// Appends every event to public vectors; the test/bench workhorse
/// (fig6_rfh_convergence reads `rfh_iterations` instead of re-deriving the
/// convergence series).
class RecordingSink : public Sink {
 public:
  void on_rfh_iteration(const RfhIterationEvent& event) override {
    rfh_iterations.push_back(event);
  }
  void on_local_search_move(const LocalSearchMoveEvent& event) override {
    local_search_moves.push_back(event);
  }
  void on_local_search_pass(const LocalSearchPassEvent& event) override {
    local_search_passes.push_back(event);
  }
  void on_local_search_run(const LocalSearchRunEvent& event) override {
    local_search_runs.push_back(event);
  }
  void on_idb_round(const IdbRoundEvent& event) override { idb_rounds.push_back(event); }
  void on_sim_round(const SimRoundEvent& event) override { sim_rounds.push_back(event); }
  void on_sim_fault(const SimFaultEvent& event) override { sim_faults.push_back(event); }
  void on_sim_repair(const SimRepairEvent& event) override { sim_repairs.push_back(event); }
  void on_charger_dispatch(const ChargerDispatchEvent& event) override {
    charger_dispatches.push_back(event);
  }

  void clear() {
    rfh_iterations.clear();
    local_search_moves.clear();
    local_search_passes.clear();
    local_search_runs.clear();
    idb_rounds.clear();
    sim_rounds.clear();
    sim_faults.clear();
    sim_repairs.clear();
    charger_dispatches.clear();
  }

  std::vector<RfhIterationEvent> rfh_iterations;
  std::vector<LocalSearchMoveEvent> local_search_moves;
  std::vector<LocalSearchPassEvent> local_search_passes;
  std::vector<LocalSearchRunEvent> local_search_runs;
  std::vector<IdbRoundEvent> idb_rounds;
  std::vector<SimRoundEvent> sim_rounds;
  std::vector<SimFaultEvent> sim_faults;
  std::vector<SimRepairEvent> sim_repairs;
  std::vector<ChargerDispatchEvent> charger_dispatches;
};

/// Folds events into a `Registry` under the canonical metric names
/// (docs/observability.md lists them all):
///   rfh/iterations, rfh/final_cost, rfh/iteration_cost, rfh/fat_tree_edges,
///   ls/evaluations, ls/moves_accepted, ls/moves_rejected, ls/passes,
///   ls/improvement, ls/final_cost,
///   ls/parallel_runs, ls/parallel_threads, ls/parallel_wasted_evaluations,
///   idb/rounds, idb/evaluations, idb/final_cost,
///   sim/rounds, sim/dead_nodes, sim/consumed_j, sim/round_energy_j,
///   sim/battery_min_j, sim/battery_mean_j,
///   sim/faults_injected, sim/reroutes, sim/delivered_bits, sim/dropped_bits,
///   sim/backlog_bits, sim/repair_latency_rounds,
///   policy/dispatches, policy/dispatch_distance_m, policy/dispatch_deficit
class MetricsSink : public Sink {
 public:
  explicit MetricsSink(Registry& registry = Registry::global());

  void on_rfh_iteration(const RfhIterationEvent& event) override;
  void on_local_search_move(const LocalSearchMoveEvent& event) override;
  void on_local_search_pass(const LocalSearchPassEvent& event) override;
  void on_local_search_run(const LocalSearchRunEvent& event) override;
  void on_idb_round(const IdbRoundEvent& event) override;
  void on_sim_round(const SimRoundEvent& event) override;
  void on_sim_fault(const SimFaultEvent& event) override;
  void on_sim_repair(const SimRepairEvent& event) override;
  void on_charger_dispatch(const ChargerDispatchEvent& event) override;

 private:
  // Cached on construction so event handlers never touch the registry lock.
  Counter* rfh_iterations_;
  Gauge* rfh_final_cost_;
  Histogram* rfh_iteration_cost_;
  Gauge* rfh_fat_tree_edges_;
  Counter* ls_evaluations_;
  Counter* ls_moves_accepted_;
  Counter* ls_moves_rejected_;
  Counter* ls_passes_;
  Histogram* ls_improvement_;
  Gauge* ls_final_cost_;
  Counter* ls_parallel_runs_;
  Gauge* ls_parallel_threads_;
  Counter* ls_parallel_wasted_;
  Counter* idb_rounds_;
  Gauge* idb_evaluations_;
  Gauge* idb_final_cost_;
  Counter* sim_rounds_;
  Gauge* sim_dead_nodes_;
  Gauge* sim_consumed_j_;
  Histogram* sim_round_energy_j_;
  Gauge* sim_battery_min_j_;
  Gauge* sim_battery_mean_j_;
  Counter* sim_faults_injected_;
  Counter* sim_reroutes_;
  Gauge* sim_delivered_bits_;
  Gauge* sim_dropped_bits_;
  Gauge* sim_backlog_bits_;
  Histogram* sim_repair_latency_;
  Counter* policy_dispatches_;
  Histogram* policy_dispatch_distance_;
  Histogram* policy_dispatch_deficit_;
};

/// Fans every event out to a list of non-owned sinks.
class MultiSink : public Sink {
 public:
  MultiSink() = default;
  explicit MultiSink(std::vector<Sink*> sinks) : sinks_(std::move(sinks)) {}
  void add(Sink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void on_rfh_iteration(const RfhIterationEvent& event) override {
    for (Sink* s : sinks_) s->on_rfh_iteration(event);
  }
  void on_local_search_move(const LocalSearchMoveEvent& event) override {
    for (Sink* s : sinks_) s->on_local_search_move(event);
  }
  void on_local_search_pass(const LocalSearchPassEvent& event) override {
    for (Sink* s : sinks_) s->on_local_search_pass(event);
  }
  void on_local_search_run(const LocalSearchRunEvent& event) override {
    for (Sink* s : sinks_) s->on_local_search_run(event);
  }
  void on_idb_round(const IdbRoundEvent& event) override {
    for (Sink* s : sinks_) s->on_idb_round(event);
  }
  void on_sim_round(const SimRoundEvent& event) override {
    for (Sink* s : sinks_) s->on_sim_round(event);
  }
  void on_sim_fault(const SimFaultEvent& event) override {
    for (Sink* s : sinks_) s->on_sim_fault(event);
  }
  void on_sim_repair(const SimRepairEvent& event) override {
    for (Sink* s : sinks_) s->on_sim_repair(event);
  }
  void on_charger_dispatch(const ChargerDispatchEvent& event) override {
    for (Sink* s : sinks_) s->on_charger_dispatch(event);
  }

 private:
  std::vector<Sink*> sinks_;
};

}  // namespace wrsn::obs
