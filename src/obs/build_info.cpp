#include "obs/build_info.hpp"

#include "obs/report.hpp"

namespace wrsn::obs {

namespace {

const char* detect_build_type() {
  // Matches the bench harness's release test: NDEBUG plus an optimizer
  // marker, so RelWithDebInfo counts as release and plain Debug does not.
#if defined(NDEBUG) && (defined(__OPTIMIZE__) || defined(_MSC_VER))
  return "release";
#else
  return "debug";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{
#if defined(WRSN_GIT_SHA)
      WRSN_GIT_SHA,
#else
      "unknown",
#endif
      detect_build_type(),
  };
  return info;
}

void add_provenance(RunReport& report) {
  const BuildInfo& info = build_info();
  report.begin_section("provenance")
      .add("git_sha", info.git_sha)
      .add("build_type", info.build_type)
      .add("schema_report", "wrsn-report v1")
      .add("schema_metrics", "wrsn-metrics v1")
      .add("schema_metrics_series", "wrsn-metrics-series v1")
      .add("schema_progress", "wrsn-progress v1")
      .add("schema_scenario", "wrsn-scenario v1")
      .add("schema_exp_rows", "wrsn-exp-rows v1");
}

}  // namespace wrsn::obs
