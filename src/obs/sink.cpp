#include "obs/sink.hpp"

namespace wrsn::obs {

MetricsSink::MetricsSink(Registry& registry)
    : rfh_iterations_(&registry.counter("rfh/iterations")),
      rfh_final_cost_(&registry.gauge("rfh/final_cost")),
      rfh_iteration_cost_(&registry.histogram("rfh/iteration_cost")),
      rfh_fat_tree_edges_(&registry.gauge("rfh/fat_tree_edges")),
      ls_evaluations_(&registry.counter("ls/evaluations")),
      ls_moves_accepted_(&registry.counter("ls/moves_accepted")),
      ls_moves_rejected_(&registry.counter("ls/moves_rejected")),
      ls_passes_(&registry.counter("ls/passes")),
      ls_improvement_(&registry.histogram("ls/improvement")),
      ls_final_cost_(&registry.gauge("ls/final_cost")),
      ls_parallel_runs_(&registry.counter("ls/parallel_runs")),
      ls_parallel_threads_(&registry.gauge("ls/parallel_threads")),
      ls_parallel_wasted_(&registry.counter("ls/parallel_wasted_evaluations")),
      idb_rounds_(&registry.counter("idb/rounds")),
      idb_evaluations_(&registry.gauge("idb/evaluations")),
      idb_final_cost_(&registry.gauge("idb/final_cost")),
      sim_rounds_(&registry.counter("sim/rounds")),
      sim_dead_nodes_(&registry.gauge("sim/dead_nodes")),
      sim_consumed_j_(&registry.gauge("sim/consumed_j")),
      sim_round_energy_j_(&registry.histogram("sim/round_energy_j")),
      sim_battery_min_j_(&registry.gauge("sim/battery_min_j")),
      sim_battery_mean_j_(&registry.gauge("sim/battery_mean_j")),
      sim_faults_injected_(&registry.counter("sim/faults_injected")),
      sim_reroutes_(&registry.counter("sim/reroutes")),
      sim_delivered_bits_(&registry.gauge("sim/delivered_bits")),
      sim_dropped_bits_(&registry.gauge("sim/dropped_bits")),
      sim_backlog_bits_(&registry.gauge("sim/backlog_bits")),
      sim_repair_latency_(&registry.histogram("sim/repair_latency_rounds")),
      policy_dispatches_(&registry.counter("policy/dispatches")),
      policy_dispatch_distance_(&registry.histogram("policy/dispatch_distance_m")),
      policy_dispatch_deficit_(&registry.histogram("policy/dispatch_deficit")) {}

void MetricsSink::on_rfh_iteration(const RfhIterationEvent& event) {
  rfh_iterations_->increment();
  rfh_final_cost_->set(event.best_cost);
  rfh_iteration_cost_->record(event.cost);
  rfh_fat_tree_edges_->set(static_cast<double>(event.fat_tree_edges));
}

void MetricsSink::on_local_search_move(const LocalSearchMoveEvent& event) {
  ls_evaluations_->increment();
  if (event.accepted) {
    ls_moves_accepted_->increment();
    ls_improvement_->record(event.improvement());
  } else {
    ls_moves_rejected_->increment();
  }
}

void MetricsSink::on_local_search_pass(const LocalSearchPassEvent& event) {
  ls_passes_->increment();
  ls_final_cost_->set(event.cost);
}

void MetricsSink::on_local_search_run(const LocalSearchRunEvent& event) {
  if (event.threads > 1) ls_parallel_runs_->increment();
  ls_parallel_threads_->set(static_cast<double>(event.threads));
  ls_parallel_wasted_->increment(event.wasted_evaluations);
}

void MetricsSink::on_idb_round(const IdbRoundEvent& event) {
  idb_rounds_->increment();
  idb_evaluations_->set(static_cast<double>(event.evaluations));
  idb_final_cost_->set(event.cost);
}

void MetricsSink::on_sim_round(const SimRoundEvent& event) {
  sim_rounds_->increment();
  sim_dead_nodes_->set(static_cast<double>(event.dead_nodes));
  sim_consumed_j_->add(event.consumed_j);
  sim_round_energy_j_->record(event.consumed_j);
  sim_battery_min_j_->set(event.battery_min_j);
  sim_battery_mean_j_->set(event.battery_mean_j);
  sim_reroutes_->increment(static_cast<std::uint64_t>(event.reroutes));
  sim_delivered_bits_->add(event.delivered_bits);
  sim_dropped_bits_->add(event.dropped_bits);
  sim_backlog_bits_->set(event.backlog_bits);
}

void MetricsSink::on_sim_fault(const SimFaultEvent&) { sim_faults_injected_->increment(); }

void MetricsSink::on_sim_repair(const SimRepairEvent& event) {
  sim_repair_latency_->record(static_cast<double>(event.latency_rounds));
}

void MetricsSink::on_charger_dispatch(const ChargerDispatchEvent& event) {
  policy_dispatches_->increment();
  policy_dispatch_distance_->record(event.distance_m);
  policy_dispatch_deficit_->record(event.deficit_fraction);
}

}  // namespace wrsn::obs
