// Hardware perf-counter probes for trace spans.
//
// On Linux, `perf_event_open(2)` exposes per-thread hardware counters
// (cycles, instructions, cache misses, branch misses) without elevated
// privileges in most configurations.  PerfProbe opens one fd per counter
// per thread, lazily, the first time that thread reads; a span then costs
// four read(2) calls at entry and exit.  Containers and CI runners often
// deny the syscall (seccomp, perf_event_paranoid >= 3, or a kernel built
// without perf) -- that is *expected*, not an error: the probe degrades to
// counters_available == false and reports why through status(), and the
// artifacts record "unavailable" so a trace from a locked-down box is
// still valid, just thinner.
//
// Allocation counting needs no kernel help: perf_probe.cpp replaces the
// global operator new/delete to bump thread-local counters (forwarding to
// std::malloc/std::free, which keeps ASan/TSan interception intact).
// Allocation counts are therefore always available, even where the
// hardware counters are not.
#pragma once

#include <cstdint>
#include <string>

namespace wrsn::obs {

/// A point-in-time counter reading, or the difference of two readings
/// (PerfCounters::delta).  Hardware fields are meaningful only when
/// counters_available; allocation fields always are.
struct PerfCounters {
  bool counters_available = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t allocations = 0;
  std::uint64_t allocated_bytes = 0;

  /// this - earlier, fieldwise; counters_available only when both sides had
  /// live hardware counters.
  PerfCounters delta(const PerfCounters& earlier) const noexcept;
};

namespace perf {

/// True when this thread's hardware counters opened successfully (opens
/// them on first call).  Cheap after the first call.
bool available();

/// "available", or "unavailable: <reason>" naming the errno/cause of the
/// failed perf_event_open (stable for the process lifetime once probed).
const std::string& status();

/// Reads this thread's counters now.  Always fills the allocation fields;
/// hardware fields are zero with counters_available=false when unavailable.
PerfCounters read();

}  // namespace perf

}  // namespace wrsn::obs
