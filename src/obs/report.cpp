#include "obs/report.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wrsn::obs {

namespace {

void check_key(const std::string& key) {
  if (key.empty() || key.find_first_of(" \t\r\n") != std::string::npos) {
    throw std::invalid_argument("report keys must be non-empty and whitespace-free: '" + key +
                                "'");
  }
}

std::string format_full(double value) {
  std::ostringstream ss;
  ss << std::setprecision(std::numeric_limits<double>::max_digits10) << value;
  return ss.str();
}

}  // namespace

RunReport::RunReport(std::string title) : title_(std::move(title)) {}

RunReport::Section& RunReport::current() {
  if (sections_.empty()) begin_section("run");
  return sections_.back();
}

RunReport& RunReport::begin_section(const std::string& name) {
  check_key(name);
  sections_.push_back({name, {}});
  return *this;
}

RunReport& RunReport::add(const std::string& key, const std::string& value) {
  check_key(key);
  if (value.find_first_of("\r\n") != std::string::npos) {
    throw std::invalid_argument("report values must be single-line: key '" + key + "'");
  }
  current().items.emplace_back(key, value);
  return *this;
}

RunReport& RunReport::add(const std::string& key, const char* value) {
  return add(key, std::string(value));
}

RunReport& RunReport::add(const std::string& key, double value) {
  return add(key, format_full(value));
}

RunReport& RunReport::add(const std::string& key, std::int64_t value) {
  return add(key, std::to_string(value));
}

RunReport& RunReport::add(const std::string& key, std::uint64_t value) {
  return add(key, std::to_string(value));
}

RunReport& RunReport::add(const std::string& key, int value) {
  return add(key, std::to_string(value));
}

RunReport& RunReport::add(const std::string& key, bool value) {
  return add(key, value ? std::string("true") : std::string("false"));
}

RunReport& RunReport::attach_metrics(const MetricsSnapshot& snapshot) {
  begin_section("metrics");
  for (const MetricSnapshot& entry : snapshot.entries) {
    switch (entry.kind) {
      case MetricSnapshot::Kind::Counter:
        add(entry.name, "counter " + std::to_string(entry.counter));
        break;
      case MetricSnapshot::Kind::Gauge:
        add(entry.name, "gauge " + format_full(entry.gauge));
        break;
      case MetricSnapshot::Kind::Histogram: {
        const HistogramSnapshot& h = entry.histogram;
        std::string line = "histogram count " + std::to_string(h.count) + " sum " +
                           format_full(h.sum);
        if (h.count > 0) {
          line += " min " + format_full(h.min) + " mean " + format_full(h.mean()) + " max " +
                  format_full(h.max);
        }
        add(entry.name, line);
        break;
      }
    }
  }
  return *this;
}

void RunReport::write(std::ostream& os) const {
  os << "wrsn-report v1\n";
  os << "title " << title_ << '\n';
  for (const Section& section : sections_) {
    os << "section " << section.name << '\n';
    for (const auto& [key, value] : section.items) {
      os << "  " << key << ' ' << value << '\n';
    }
  }
}

void RunReport::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open report file for writing: " + path);
  write(os);
}

}  // namespace wrsn::obs
