#include "obs/series.hpp"

#include "util/timer.hpp"

namespace wrsn::obs {
namespace {

// Movement of `cur` relative to `prev` (nullptr = metric born this
// interval, diffed against zero).  Returns false when nothing moved.
bool diff_entry(const MetricSnapshot& cur, const MetricSnapshot* prev, SeriesEntry& out) {
  out.kind = cur.kind;
  out.name = cur.name;
  switch (cur.kind) {
    case MetricSnapshot::Kind::Counter: {
      const std::uint64_t before = prev != nullptr ? prev->counter : 0;
      if (cur.counter == before) return false;
      // reset() between samples makes the counter appear to go backwards;
      // report the new absolute value as the interval's delta.
      out.counter_delta = cur.counter >= before ? cur.counter - before : cur.counter;
      return true;
    }
    case MetricSnapshot::Kind::Gauge: {
      if (prev != nullptr && prev->gauge == cur.gauge) return false;
      out.gauge_value = cur.gauge;
      return true;
    }
    case MetricSnapshot::Kind::Histogram: {
      const std::uint64_t before_count = prev != nullptr ? prev->histogram.count : 0;
      const double before_sum = prev != nullptr ? prev->histogram.sum : 0.0;
      if (cur.histogram.count == before_count) return false;
      if (cur.histogram.count >= before_count) {
        out.histogram_count = cur.histogram.count - before_count;
        out.histogram_sum = cur.histogram.sum - before_sum;
      } else {  // reset between samples
        out.histogram_count = cur.histogram.count;
        out.histogram_sum = cur.histogram.sum;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

MetricsSeries::MetricsSeries(Registry& registry, double min_interval_s)
    : registry_(registry),
      min_interval_s_(min_interval_s < 0.0 ? 0.0 : min_interval_s),
      start_ns_(util::Timer::now_ns()),
      prev_(registry.snapshot()) {}

bool MetricsSeries::sample(double t_s) {
  const std::int64_t now_ns = util::Timer::now_ns();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_ && static_cast<double>(now_ns - last_ns_) * 1e-9 < min_interval_s_) {
      return false;
    }
  }
  sample_now(t_s);
  return true;
}

void MetricsSeries::sample_now(double t_s) {
  // Snapshot outside the series lock: Registry::snapshot takes its own
  // mutex, and holding both invites ordering trouble with other callers.
  MetricsSnapshot cur = registry_.snapshot();
  const std::int64_t now_ns = util::Timer::now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = true;
  last_ns_ = now_ns;
  SeriesSample sample;
  sample.seq = next_seq_++;
  sample.t_s = t_s;
  // Both snapshots are name-sorted; march them in lockstep.  Metrics only
  // ever get added to a registry, so cur is a superset of prev_.
  std::size_t pi = 0;
  for (const MetricSnapshot& entry : cur.entries) {
    const MetricSnapshot* prev = nullptr;
    while (pi < prev_.entries.size() && prev_.entries[pi].name < entry.name) ++pi;
    if (pi < prev_.entries.size() && prev_.entries[pi].name == entry.name) {
      prev = &prev_.entries[pi];
    }
    SeriesEntry delta;
    if (diff_entry(entry, prev, delta)) sample.entries.push_back(std::move(delta));
  }
  data_.samples.push_back(std::move(sample));
  prev_ = std::move(cur);
}

MetricsSeriesData MetricsSeries::data() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

std::size_t MetricsSeries::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.samples.size();
}

}  // namespace wrsn::obs
