#include "obs/progress.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "obs/series.hpp"
#include "util/timer.hpp"

namespace wrsn::obs {
namespace {

// obs sits below io, so the NDJSON line is formatted by hand.  %.17g is
// round-trip exact for doubles and never produces locale-dependent output
// (snprintf with the "C" numeric conventions for %g).
void append_number(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

std::string format_progress_line(const ProgressEvent& event, std::uint64_t seq, double t_s) {
  std::string line;
  line.reserve(96 + event.fields.size() * 32);
  line += "{\"stream\":\"wrsn-progress\",\"v\":1,\"source\":\"";
  line += event.source;
  line += "\",\"seq\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, seq);
  line += buf;
  line += ",\"t_s\":";
  append_number(line, t_s);
  line += ",\"final\":";
  line += event.final_event ? "true" : "false";
  for (const auto& [key, value] : event.fields) {
    line += ",\"";
    line += key;
    line += "\":";
    append_number(line, value);
  }
  line += '}';
  return line;
}

StreamProgressSink::StreamProgressSink(std::ostream* os, double min_interval_s)
    : os_(os),
      min_interval_s_(min_interval_s < 0.0 ? 0.0 : min_interval_s),
      start_ns_(util::Timer::now_ns()) {}

bool StreamProgressSink::due(const SourceState& state, std::int64_t now_ns) const noexcept {
  if (!state.started) return true;
  const double elapsed_s = static_cast<double>(now_ns - state.last_ns) * 1e-9;
  return elapsed_s >= min_interval_s_;
}

bool StreamProgressSink::wants(const std::string& source) {
  const std::int64_t now_ns = util::Timer::now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sources_.find(source);
  if (it == sources_.end()) return true;
  return due(it->second, now_ns);
}

void StreamProgressSink::emit(const ProgressEvent& event) {
  const std::int64_t now_ns = util::Timer::now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  SourceState& state = sources_[event.source];
  if (!event.final_event && !due(state, now_ns)) {
    ++dropped_;
    return;
  }
  state.started = true;
  state.last_ns = now_ns;
  const std::uint64_t seq = state.seq++;
  ++emitted_;
  const double t_s = static_cast<double>(now_ns - start_ns_) * 1e-9;
  if (os_ != nullptr) {
    *os_ << format_progress_line(event, seq, t_s) << '\n';
    os_->flush();  // heartbeats must be visible live, not at buffer flush
  }
  if (series_ != nullptr) series_->sample(t_s);
}

std::uint64_t StreamProgressSink::emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

std::uint64_t StreamProgressSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

}  // namespace wrsn::obs
