// Periodic metrics snapshotting: the time-series substrate behind
// `wrsn-metrics-series v1` (docs/formats.md).
//
// A final `wrsn-metrics v1` dump answers "how much, in total"; the future
// planning service (ROADMAP item 1) needs "how much, *per interval*" --
// rates, stalls, phase changes.  MetricsSeries wraps a Registry and, each
// time `sample()` is called, diffs the current snapshot against the
// previous one: counters and histogram count/sum become deltas over the
// interval, gauges stay absolute levels (a gauge *is* a level; deltas of
// levels are noise).  Metrics that did not move in an interval are omitted
// from that sample, so long quiet stretches cost almost nothing.
//
// Sampling is typically driven by StreamProgressSink::attach_series, which
// samples at the progress heartbeat cadence; `min_interval_s` rate-limits
// on top so a chatty progress stream cannot bloat the series.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace wrsn::obs {

/// One metric's movement over a sample interval.
struct SeriesEntry {
  MetricSnapshot::Kind kind = MetricSnapshot::Kind::Counter;
  std::string name;
  std::uint64_t counter_delta = 0;    ///< Counter: increments this interval
  double gauge_value = 0.0;           ///< Gauge: absolute level at sample time
  std::uint64_t histogram_count = 0;  ///< Histogram: records this interval
  double histogram_sum = 0.0;         ///< Histogram: sum of those records
};

/// One timestamped sample: every metric that moved since the previous one.
struct SeriesSample {
  std::uint64_t seq = 0;
  double t_s = 0.0;  ///< seconds since the series was constructed/reset
  std::vector<SeriesEntry> entries;  ///< name-sorted (snapshot order)
};

/// Accumulated series; what io::write_metrics_series serializes.
struct MetricsSeriesData {
  std::vector<SeriesSample> samples;
};

class MetricsSeries {
 public:
  /// Snapshots `registry` at construction as the delta baseline, so the
  /// first sample reports movement since the series began, not since the
  /// process began.
  explicit MetricsSeries(Registry& registry, double min_interval_s = 0.0);

  /// Takes a sample if at least `min_interval_s` passed since the last one
  /// (the first call always samples).  `t_s` is the caller's timestamp,
  /// recorded verbatim; rate limiting uses the sink's own monotonic clock.
  /// Returns true when a sample was actually taken.  Thread-safe.
  bool sample(double t_s);

  /// Unconditional sample ignoring the rate limit (run-end flush).
  void sample_now(double t_s);

  MetricsSeriesData data() const;
  std::size_t size() const;

 private:
  void take_sample(double t_s);

  Registry& registry_;
  double min_interval_s_;
  mutable std::mutex mutex_;
  std::int64_t start_ns_;
  std::int64_t last_ns_ = 0;
  bool started_ = false;
  std::uint64_t next_seq_ = 0;
  MetricsSnapshot prev_;
  MetricsSeriesData data_;
};

}  // namespace wrsn::obs
