#include "obs/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace wrsn::obs {

namespace {

// Nesting depth of live spans on this thread (any buffer; spans are rare
// enough that per-buffer bookkeeping isn't worth the indirection).
thread_local int t_span_depth = 0;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void TraceBuffer::record(std::string name, std::int64_t start_ns, std::int64_t dur_ns,
                         int depth) {
  if (!enabled()) return;
  const std::size_t thread_hash = std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find(thread_hashes_.begin(), thread_hashes_.end(), thread_hash);
  if (it == thread_hashes_.end()) {
    thread_hashes_.push_back(thread_hash);
    it = std::prev(thread_hashes_.end());
  }
  const int tid = static_cast<int>(it - thread_hashes_.begin());
  events_.push_back({std::move(name), start_ns, dur_ns, tid, depth});
}

void TraceBuffer::record_perf(std::string name, std::int64_t start_ns, std::int64_t dur_ns,
                              int depth, const PerfCounters& perf) {
  if (!enabled()) return;
  const std::size_t thread_hash = std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find(thread_hashes_.begin(), thread_hashes_.end(), thread_hash);
  if (it == thread_hashes_.end()) {
    thread_hashes_.push_back(thread_hash);
    it = std::prev(thread_hashes_.end());
  }
  const int tid = static_cast<int>(it - thread_hashes_.begin());
  TraceEvent event{std::move(name), start_ns, dur_ns, tid, depth};
  event.has_perf = true;
  event.perf = perf;
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  thread_hashes_.clear();
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

TraceSpan::TraceSpan(const char* name, TraceBuffer& buffer) noexcept
    : name_(name), buffer_(buffer.enabled() ? &buffer : nullptr) {
  if (buffer_ == nullptr) return;  // disabled: skip the clock reads entirely
  depth_ = t_span_depth++;
  perf_ = buffer.perf_enabled();
  if (perf_) perf_start_ = perf::read();
  start_ns_ = util::Timer::now_ns();
  timer_.reset();
}

TraceSpan::~TraceSpan() {
  if (buffer_ == nullptr) return;
  --t_span_depth;
  // An enabled->disabled flip mid-span drops the event inside record().
  if (perf_) {
    buffer_->record_perf(name_, start_ns_, timer_.elapsed_ns(), depth_,
                         perf::read().delta(perf_start_));
  } else {
    buffer_->record(name_, start_ns_, timer_.elapsed_ns(), depth_);
  }
}

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events) {
  std::int64_t origin = std::numeric_limits<std::int64_t>::max();
  for (const TraceEvent& e : events) origin = std::min(origin, e.start_ns);

  // Microsecond ts/dur with 3 decimals keeps nanosecond resolution.
  os << std::fixed << std::setprecision(3);
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"wrsn\",\"ph\":\"X\""
       << ",\"ts\":" << static_cast<double>(e.start_ns - origin) / 1e3
       << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3 << ",\"pid\":0,\"tid\":" << e.tid
       << ",\"args\":{\"depth\":" << e.depth;
    if (e.has_perf) {
      // Numeric-only values: the round-trip scanner below parses args
      // values as numbers.  perf_available doubles as the has-hardware flag
      // so a degraded (allocation-only) span stays distinguishable.
      os << ",\"perf_available\":" << (e.perf.counters_available ? 1 : 0)
         << ",\"cycles\":" << e.perf.cycles << ",\"instructions\":" << e.perf.instructions
         << ",\"cache_misses\":" << e.perf.cache_misses
         << ",\"branch_misses\":" << e.perf.branch_misses
         << ",\"allocations\":" << e.perf.allocations
         << ",\"allocated_bytes\":" << e.perf.allocated_bytes;
    }
    os << "}}";
  }
  os << "\n]\n";
}

namespace {

// Minimal scanner for the writer's own output: a JSON array of flat objects
// with string/number values and one nested "args" object.
class TraceJsonScanner {
 public:
  explicit TraceJsonScanner(std::istream& is) {
    std::ostringstream buffer;
    buffer << is.rdbuf();
    text_ = buffer.str();
  }

  std::vector<TraceEvent> parse() {
    skip_ws();
    expect('[');
    std::vector<TraceEvent> events;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return events;
    }
    while (true) {
      events.push_back(parse_event());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' between events");
    }
    return events;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("chrome trace parse error at offset " + std::to_string(pos_) +
                             ": " + why);
  }
  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        c = next();
        switch (c) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            out += static_cast<char>(std::stoi(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: out += c;
        }
      } else {
        out += c;
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  TraceEvent parse_event() {
    skip_ws();
    expect('{');
    TraceEvent event;
    bool saw_complete_phase = false;
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "name") {
        event.name = parse_string();
      } else if (key == "ph") {
        saw_complete_phase = parse_string() == "X";
      } else if (key == "ts") {
        event.start_ns = static_cast<std::int64_t>(parse_number() * 1e3 + 0.5);
      } else if (key == "dur") {
        event.dur_ns = static_cast<std::int64_t>(parse_number() * 1e3 + 0.5);
      } else if (key == "tid") {
        event.tid = static_cast<int>(parse_number());
      } else if (key == "args") {
        expect('{');
        skip_ws();
        if (peek() != '}') {
          while (true) {
            const std::string arg = parse_string();
            skip_ws();
            expect(':');
            skip_ws();
            const double value = parse_number();
            if (arg == "depth") {
              event.depth = static_cast<int>(value);
            } else if (arg == "perf_available") {
              event.has_perf = true;
              event.perf.counters_available = value != 0.0;
            } else if (arg == "cycles") {
              event.perf.cycles = static_cast<std::uint64_t>(value);
            } else if (arg == "instructions") {
              event.perf.instructions = static_cast<std::uint64_t>(value);
            } else if (arg == "cache_misses") {
              event.perf.cache_misses = static_cast<std::uint64_t>(value);
            } else if (arg == "branch_misses") {
              event.perf.branch_misses = static_cast<std::uint64_t>(value);
            } else if (arg == "allocations") {
              event.perf.allocations = static_cast<std::uint64_t>(value);
            } else if (arg == "allocated_bytes") {
              event.perf.allocated_bytes = static_cast<std::uint64_t>(value);
            }
            skip_ws();
            if (peek() != ',') break;
            ++pos_;
            skip_ws();
          }
        }
        skip_ws();
        expect('}');
      } else if (peek() == '"') {
        parse_string();  // unknown string field (e.g. "cat")
      } else {
        parse_number();  // unknown numeric field (e.g. "pid")
      }
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' inside event");
    }
    if (!saw_complete_phase) fail("event is not a complete ('X') event");
    return event;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<TraceEvent> read_chrome_trace(std::istream& is) {
  return TraceJsonScanner(is).parse();
}

void save_chrome_trace(const std::string& path, const std::vector<TraceEvent>& events) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open trace file for writing: " + path);
  write_chrome_trace(os, events);
}

}  // namespace wrsn::obs
