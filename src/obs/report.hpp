// Structured run reports: the line-oriented `wrsn-report v1` artifact
// `plan_tool --report=out.txt` emits.
//
// A report is an ordered list of named sections of key/value items plus an
// optional metrics snapshot; the format follows io/serialize's conventions
// (self-describing header, one fact per line, '#' comments), so reports
// diff cleanly in version control and stay trivially greppable:
//
//   wrsn-report v1
//   title planning run
//   section solver
//     name rfh+ls
//     final_cost_j_per_bit 8.2592e-06
//   section metrics
//     counter rfh/iterations 7
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace wrsn::obs {

/// Builder for one run's report. Keys follow metric-name rules (no
/// whitespace); values may be any single-line string.
class RunReport {
 public:
  explicit RunReport(std::string title);

  /// Starts (or re-opens) the section subsequent add() calls write into.
  RunReport& begin_section(const std::string& name);
  RunReport& add(const std::string& key, const std::string& value);
  RunReport& add(const std::string& key, const char* value);
  RunReport& add(const std::string& key, double value);
  RunReport& add(const std::string& key, std::int64_t value);
  RunReport& add(const std::string& key, std::uint64_t value);
  RunReport& add(const std::string& key, int value);
  RunReport& add(const std::string& key, bool value);

  /// Appends a "metrics" section rendering `snapshot` (one line per metric,
  /// histogram bucket detail included).
  RunReport& attach_metrics(const MetricsSnapshot& snapshot);

  void write(std::ostream& os) const;
  /// Throws std::runtime_error when the path is unwritable.
  void save(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    std::vector<std::pair<std::string, std::string>> items;
  };

  Section& current();

  std::string title_;
  std::vector<Section> sections_;
};

}  // namespace wrsn::obs
