// Trace spans: RAII timing regions collected into a per-run buffer and
// exportable as Chrome trace-event JSON (open chrome://tracing or Perfetto
// and drop the file in).
//
//   obs::TraceBuffer::global().set_enabled(true);
//   { WRSN_TRACE_SPAN("rfh/phase2"); trim_fat_tree(dag); }
//   obs::save_chrome_trace("run.json", obs::TraceBuffer::global().events());
//
// Spans are RAII over `util::Timer`: construction stamps the start,
// destruction records a complete ("ph":"X") event.  When the buffer is
// disabled a span costs one relaxed atomic load and an idle stopwatch
// construction, so instrumentation can stay compiled into hot solver loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/perf_probe.hpp"
#include "util/timer.hpp"

namespace wrsn::obs {

/// One completed span. Timestamps are `util::Timer::now_ns()` values
/// (monotonic, arbitrary epoch); exporters rebase them to the buffer's
/// earliest event.
struct TraceEvent {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  int tid = 0;    ///< small dense thread index (0 = first recording thread)
  int depth = 0;  ///< span nesting depth within its thread at record time
  /// Counter deltas over the span when the buffer had perf probing enabled
  /// (obs/perf_probe.hpp); `perf.counters_available` distinguishes real
  /// hardware readings from the allocation-only degraded mode.
  bool has_perf = false;
  PerfCounters perf;
};

/// Thread-safe append-only collection of completed spans.
class TraceBuffer {
 public:
  TraceBuffer() = default;
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Disabled buffers drop record() calls; spans check this before timing.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  /// When enabled, spans read perf counters (obs/perf_probe.hpp) at entry
  /// and exit and attach the deltas.  Independent of set_enabled; has no
  /// effect while the buffer itself is disabled.
  void set_perf_enabled(bool enabled) noexcept {
    perf_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool perf_enabled() const noexcept {
    return perf_enabled_.load(std::memory_order_relaxed);
  }

  void record(std::string name, std::int64_t start_ns, std::int64_t dur_ns, int depth);
  /// record() plus per-span counter deltas.
  void record_perf(std::string name, std::int64_t start_ns, std::int64_t dur_ns, int depth,
                   const PerfCounters& perf);
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  /// Process-wide buffer the WRSN_TRACE_SPAN macro reports into.
  static TraceBuffer& global();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<bool> perf_enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<std::size_t> thread_hashes_;  // dense tid assignment, FIFO
};

/// RAII timing region. The name must outlive the span (string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     TraceBuffer& buffer = TraceBuffer::global()) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  TraceBuffer* buffer_;  ///< nullptr when tracing was disabled at entry
  std::int64_t start_ns_ = 0;
  util::Timer timer_;
  int depth_ = 0;
  bool perf_ = false;  ///< perf probing was on at entry
  PerfCounters perf_start_;
};

/// Writes `events` as a Chrome trace-event JSON array of complete events
/// ("ph":"X", microsecond ts/dur rebased to the earliest span).
void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events);

/// Parses the subset of Chrome trace JSON that `write_chrome_trace` emits
/// (round-trip support for tests and tooling). Throws std::runtime_error on
/// malformed input.
std::vector<TraceEvent> read_chrome_trace(std::istream& is);

/// File convenience wrapper; throws std::runtime_error when unwritable.
void save_chrome_trace(const std::string& path, const std::vector<TraceEvent>& events);

}  // namespace wrsn::obs

#define WRSN_OBS_CONCAT_INNER(a, b) a##b
#define WRSN_OBS_CONCAT(a, b) WRSN_OBS_CONCAT_INNER(a, b)
/// Times the enclosing scope under `name` (a string literal).
#define WRSN_TRACE_SPAN(name) \
  ::wrsn::obs::TraceSpan WRSN_OBS_CONCAT(wrsn_trace_span_, __LINE__)(name)
