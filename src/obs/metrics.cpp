#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wrsn::obs {

namespace {

// CAS loops instead of std::atomic<double>::fetch_add: portable across
// toolchains that lack the C++20 floating-point atomic extensions.
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double delta) noexcept { atomic_add(value_, delta); }

int Histogram::bucket_index(double value) noexcept {
  if (!(value > 0.0)) return 0;  // non-positive (and NaN) values underflow
  const int exponent = static_cast<int>(std::floor(std::log2(value)));
  return std::clamp(exponent - kMinExponent, 0, kNumBuckets - 1);
}

double Histogram::bucket_lower(int index) noexcept {
  return std::ldexp(1.0, index + kMinExponent);
}

double Histogram::bucket_upper(int index) noexcept {
  return std::ldexp(1.0, index + 1 + kMinExponent);
}

void Histogram::record(double value) noexcept {
  // First recorded value seeds min/max; later records fold in via CAS. The
  // count_ == 0 probe races benignly: a concurrent first record can only
  // make both threads seed, and CAS keeps the true extremes.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    atomic_min(min_, value);
    atomic_max(max_, value);
  }
  atomic_add(sum_, value);
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.buckets.push_back({bucket_lower(i), bucket_upper(i), n});
  }
  return snap;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

const MetricSnapshot* MetricsSnapshot::find(const std::string& name) const noexcept {
  for (const MetricSnapshot& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Registry::Slot& Registry::slot(const std::string& name, MetricSnapshot::Kind kind) {
  if (name.empty() || name.find_first_of(" \t\r\n") != std::string::npos) {
    throw std::invalid_argument("metric names must be non-empty and whitespace-free: '" +
                                name + "'");
  }
  const auto [it, inserted] = slots_.try_emplace(name);
  Slot& s = it->second;
  if (inserted) {
    s.kind = kind;
    switch (kind) {
      case MetricSnapshot::Kind::Counter: s.counter = std::make_unique<Counter>(); break;
      case MetricSnapshot::Kind::Gauge: s.gauge = std::make_unique<Gauge>(); break;
      case MetricSnapshot::Kind::Histogram: s.histogram = std::make_unique<Histogram>(); break;
    }
  } else if (s.kind != kind) {
    throw std::invalid_argument("metric '" + name + "' already registered as another kind");
  }
  return s;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *slot(name, MetricSnapshot::Kind::Counter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *slot(name, MetricSnapshot::Kind::Gauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *slot(name, MetricSnapshot::Kind::Histogram).histogram;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.entries.reserve(slots_.size());
  for (const auto& [name, s] : slots_) {  // std::map: already name-sorted
    MetricSnapshot entry;
    entry.name = name;
    entry.kind = s.kind;
    switch (s.kind) {
      case MetricSnapshot::Kind::Counter: entry.counter = s.counter->value(); break;
      case MetricSnapshot::Kind::Gauge: entry.gauge = s.gauge->value(); break;
      case MetricSnapshot::Kind::Histogram: entry.histogram = s.histogram->snapshot(); break;
    }
    snap.entries.push_back(std::move(entry));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, s] : slots_) {
    switch (s.kind) {
      case MetricSnapshot::Kind::Counter: s.counter->reset(); break;
      case MetricSnapshot::Kind::Gauge: s.gauge->reset(); break;
      case MetricSnapshot::Kind::Histogram: s.histogram->reset(); break;
    }
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

util::Table metrics_table(const MetricsSnapshot& snapshot) {
  util::Table table({"metric", "kind", "value", "count", "min", "mean", "max"});
  for (const MetricSnapshot& entry : snapshot.entries) {
    table.begin_row().add(entry.name);
    switch (entry.kind) {
      case MetricSnapshot::Kind::Counter:
        table.add("counter")
            .add(static_cast<long long>(entry.counter))
            .add("")
            .add("")
            .add("")
            .add("");
        break;
      case MetricSnapshot::Kind::Gauge:
        table.add("gauge").add(entry.gauge, 6).add("").add("").add("").add("");
        break;
      case MetricSnapshot::Kind::Histogram: {
        const HistogramSnapshot& h = entry.histogram;
        table.add("histogram")
            .add(h.sum, 6)
            .add(static_cast<long long>(h.count))
            .add(h.count ? util::format_double(h.min, 6) : "")
            .add(h.count ? util::format_double(h.mean(), 6) : "")
            .add(h.count ? util::format_double(h.max, 6) : "");
        break;
      }
    }
  }
  return table;
}

}  // namespace wrsn::obs
