// Thread-safe metrics registry: the instrumentation substrate every layer
// (solvers, simulator, benches, tools) reports into.
//
// Three metric kinds, all lock-free on the hot path:
//   * Counter    -- monotonically increasing event count,
//   * Gauge      -- last-written floating-point level,
//   * Histogram  -- value distribution over fixed base-2 log-scale buckets
//                   (bucket i covers [2^(i+kMinExponent), 2^(i+1+kMinExponent)),
//                   wide enough for nano-joule energies and multi-second
//                   runtimes alike).
//
// A `Registry` owns metrics by name ("rfh/final_cost"); lookup is mutex-
// guarded but returns a stable reference callers cache, so instrumented
// loops never touch the lock.  `snapshot()` captures a consistent read-only
// copy that renders as the existing `util::Table` ASCII/CSV machinery or as
// the line-oriented `wrsn-metrics v1` format (io/metrics_io.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace wrsn::obs {

/// Monotonic event counter.
class Counter {
 public:
  void increment(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (settable both ways, unlike a Counter).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only copy of a histogram's state at snapshot time.
struct HistogramSnapshot {
  struct Bucket {
    double lower = 0.0;  ///< inclusive
    double upper = 0.0;  ///< exclusive
    std::uint64_t count = 0;
  };
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;  ///< meaningful only when count > 0
  std::vector<Bucket> buckets;  ///< non-empty buckets only, ascending

  double mean() const noexcept { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Distribution over fixed base-2 log-scale buckets.
class Histogram {
 public:
  /// Bucket 0 lower bound is 2^kMinExponent; values at or below it (and all
  /// non-positive values) land in bucket 0, values >= 2^kMaxExponent in the
  /// last bucket.  The span covers 1e-12 .. 1e+12 comfortably.
  static constexpr int kMinExponent = -40;
  static constexpr int kMaxExponent = 40;
  static constexpr int kNumBuckets = kMaxExponent - kMinExponent;

  void record(double value) noexcept;
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Bucket index `value` falls into (exposed for bucketing tests).
  static int bucket_index(double value) noexcept;
  /// Inclusive lower / exclusive upper bound of bucket `index`.
  static double bucket_lower(int index) noexcept;
  static double bucket_upper(int index) noexcept;

  HistogramSnapshot snapshot() const;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
};

/// One named metric inside a `MetricsSnapshot`.
struct MetricSnapshot {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  std::uint64_t counter = 0;  ///< valid when kind == Counter
  double gauge = 0.0;         ///< valid when kind == Gauge
  HistogramSnapshot histogram;  ///< valid when kind == Histogram
};

/// Consistent point-in-time copy of a registry, sorted by metric name.
struct MetricsSnapshot {
  std::vector<MetricSnapshot> entries;

  /// Entry lookup by name; nullptr when absent.
  const MetricSnapshot* find(const std::string& name) const noexcept;
};

/// Named metric store. Registration is idempotent: asking twice for the same
/// name (and kind) returns the same object, so call sites need no setup
/// phase.  Asking for an existing name as a *different* kind throws.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Metric names must be non-empty and whitespace-free ("rfh/final_cost").
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  /// Zeroes every metric (registrations and cached references stay valid).
  void reset();
  std::size_t size() const;

  /// Process-wide default registry (tools and benches report here).
  static Registry& global();

 private:
  struct Slot {
    MetricSnapshot::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& slot(const std::string& name, MetricSnapshot::Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Slot> slots_;
};

/// Renders a snapshot with the bench harness's table machinery (ASCII/CSV).
util::Table metrics_table(const MetricsSnapshot& snapshot);

}  // namespace wrsn::obs
