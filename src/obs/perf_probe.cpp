#include "obs/perf_probe.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace wrsn::obs {

// ---------------------------------------------------------------------------
// Allocation counting: global operator new/delete replacements.  These are
// process-wide (the one-definition rule allows exactly one replacement, and
// linking libwrsn provides it), forward to malloc/free so sanitizer
// interceptors still see every allocation, and bump thread-local counters
// with plain (non-atomic) increments -- each thread only ever touches its
// own counters.
// ---------------------------------------------------------------------------

namespace {

thread_local std::uint64_t t_allocations = 0;
thread_local std::uint64_t t_allocated_bytes = 0;

void* counted_alloc(std::size_t size) {
  ++t_allocations;
  t_allocated_bytes += size;
  // Zero-size new must return a unique non-null pointer; malloc(0) may
  // return null on some platforms, so round up.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace
}  // namespace wrsn::obs

void* operator new(std::size_t size) { return wrsn::obs::counted_alloc(size); }
void* operator new[](std::size_t size) { return wrsn::obs::counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++wrsn::obs::t_allocations;
  wrsn::obs::t_allocated_bytes += size;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++wrsn::obs::t_allocations;
  wrsn::obs::t_allocated_bytes += size;
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace wrsn::obs {
namespace {

// ---------------------------------------------------------------------------
// Hardware counters.
// ---------------------------------------------------------------------------

#if defined(__linux__)

// The four events a probe tracks, in PerfCounters field order.
constexpr std::uint32_t kEventConfigs[] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};
constexpr int kNumEvents = 4;

int open_event(std::uint32_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // user-space only; avoids needing CAP_PERFMON
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this thread, any CPU.  Individual fds (not a group) so
  // a machine missing e.g. the cache-miss event still yields the others.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0UL));
}

// Per-thread lazily-opened counter fds.  The holder closes them at thread
// exit.  `probed` distinguishes "not tried yet" from "tried and failed".
struct ThreadCounters {
  bool probed = false;
  bool available = false;
  int fds[kNumEvents] = {-1, -1, -1, -1};

  ~ThreadCounters() {
    for (int& fd : fds) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
  }
};

thread_local ThreadCounters t_counters;

// First failure reason, process-wide; "available" when the first probe
// succeeded.  Later threads may differ in principle, but the status string
// is diagnostic, not per-thread truth -- available() is.
std::mutex g_status_mutex;
std::string g_status;  // empty until the first probe completes

void note_status(bool ok, int err) {
  std::lock_guard<std::mutex> lock(g_status_mutex);
  if (!g_status.empty()) return;
  if (ok) {
    g_status = "available";
    return;
  }
  const char* why = "unknown error";
  switch (err) {
    case EACCES:
    case EPERM: why = "permission denied (perf_event_paranoid or seccomp)"; break;
    case ENOENT: why = "hardware events not supported"; break;
    case ENOSYS: why = "perf_event_open not implemented"; break;
    case ENODEV: why = "no hardware PMU"; break;
    default: why = std::strerror(err); break;
  }
  g_status = std::string("unavailable: ") + why;
}

bool ensure_open() {
  ThreadCounters& tc = t_counters;
  if (tc.probed) return tc.available;
  tc.probed = true;
  // The cycle counter decides availability; the other three are optional
  // extras (some PMUs lack cache/branch events).
  tc.fds[0] = open_event(kEventConfigs[0]);
  if (tc.fds[0] < 0) {
    note_status(false, errno);
    return false;
  }
  for (int i = 1; i < kNumEvents; ++i) tc.fds[i] = open_event(kEventConfigs[i]);
  tc.available = true;
  note_status(true, 0);
  return true;
}

void read_hardware(PerfCounters& out) {
  if (!ensure_open()) return;
  std::uint64_t values[kNumEvents] = {0, 0, 0, 0};
  for (int i = 0; i < kNumEvents; ++i) {
    const int fd = t_counters.fds[i];
    if (fd < 0) continue;
    std::uint64_t v = 0;
    if (::read(fd, &v, sizeof(v)) == static_cast<ssize_t>(sizeof(v))) values[i] = v;
  }
  out.counters_available = true;
  out.cycles = values[0];
  out.instructions = values[1];
  out.cache_misses = values[2];
  out.branch_misses = values[3];
}

#else  // !__linux__

void read_hardware(PerfCounters&) {}

bool ensure_open() {
  return false;
}

std::mutex g_status_mutex;
std::string g_status;

void note_nonlinux_status() {
  std::lock_guard<std::mutex> lock(g_status_mutex);
  if (g_status.empty()) g_status = "unavailable: perf_event_open requires Linux";
}

#endif

}  // namespace

PerfCounters PerfCounters::delta(const PerfCounters& earlier) const noexcept {
  PerfCounters d;
  d.counters_available = counters_available && earlier.counters_available;
  if (d.counters_available) {
    d.cycles = cycles - earlier.cycles;
    d.instructions = instructions - earlier.instructions;
    d.cache_misses = cache_misses - earlier.cache_misses;
    d.branch_misses = branch_misses - earlier.branch_misses;
  }
  d.allocations = allocations - earlier.allocations;
  d.allocated_bytes = allocated_bytes - earlier.allocated_bytes;
  return d;
}

namespace perf {

bool available() {
#if defined(__linux__)
  return ensure_open();
#else
  note_nonlinux_status();
  return false;
#endif
}

const std::string& status() {
  available();  // make sure at least one probe ran
  std::lock_guard<std::mutex> lock(g_status_mutex);
  return g_status;
}

PerfCounters read() {
  PerfCounters out;
  read_hardware(out);
  out.allocations = t_allocations;
  out.allocated_bytes = t_allocated_bytes;
  return out;
}

}  // namespace perf
}  // namespace wrsn::obs
