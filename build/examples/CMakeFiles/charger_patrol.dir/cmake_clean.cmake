file(REMOVE_RECURSE
  "CMakeFiles/charger_patrol.dir/charger_patrol.cpp.o"
  "CMakeFiles/charger_patrol.dir/charger_patrol.cpp.o.d"
  "charger_patrol"
  "charger_patrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charger_patrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
