# Empty compiler generated dependencies file for charger_patrol.
# This may be replaced when dependencies are built.
