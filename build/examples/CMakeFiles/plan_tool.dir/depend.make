# Empty dependencies file for plan_tool.
# This may be replaced when dependencies are built.
