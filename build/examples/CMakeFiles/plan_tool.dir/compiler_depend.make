# Empty compiler generated dependencies file for plan_tool.
# This may be replaced when dependencies are built.
