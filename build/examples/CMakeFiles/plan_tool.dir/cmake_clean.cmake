file(REMOVE_RECURSE
  "CMakeFiles/plan_tool.dir/plan_tool.cpp.o"
  "CMakeFiles/plan_tool.dir/plan_tool.cpp.o.d"
  "plan_tool"
  "plan_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
