file(REMOVE_RECURSE
  "CMakeFiles/island_monitoring.dir/island_monitoring.cpp.o"
  "CMakeFiles/island_monitoring.dir/island_monitoring.cpp.o.d"
  "island_monitoring"
  "island_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/island_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
