# Empty dependencies file for island_monitoring.
# This may be replaced when dependencies are built.
