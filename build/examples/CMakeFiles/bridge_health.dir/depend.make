# Empty dependencies file for bridge_health.
# This may be replaced when dependencies are built.
