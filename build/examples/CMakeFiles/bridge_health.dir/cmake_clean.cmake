file(REMOVE_RECURSE
  "CMakeFiles/bridge_health.dir/bridge_health.cpp.o"
  "CMakeFiles/bridge_health.dir/bridge_health.cpp.o.d"
  "bridge_health"
  "bridge_health.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_health.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
