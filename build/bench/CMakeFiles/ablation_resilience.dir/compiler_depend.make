# Empty compiler generated dependencies file for ablation_resilience.
# This may be replaced when dependencies are built.
