file(REMOVE_RECURSE
  "CMakeFiles/ablation_resilience.dir/ablation_resilience.cpp.o"
  "CMakeFiles/ablation_resilience.dir/ablation_resilience.cpp.o.d"
  "ablation_resilience"
  "ablation_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
