# Empty dependencies file for ablation_fleet_sizing.
# This may be replaced when dependencies are built.
