file(REMOVE_RECURSE
  "CMakeFiles/ablation_fleet_sizing.dir/ablation_fleet_sizing.cpp.o"
  "CMakeFiles/ablation_fleet_sizing.dir/ablation_fleet_sizing.cpp.o.d"
  "ablation_fleet_sizing"
  "ablation_fleet_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fleet_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
