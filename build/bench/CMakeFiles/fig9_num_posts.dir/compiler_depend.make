# Empty compiler generated dependencies file for fig9_num_posts.
# This may be replaced when dependencies are built.
