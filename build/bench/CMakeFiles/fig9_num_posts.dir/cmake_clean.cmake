file(REMOVE_RECURSE
  "CMakeFiles/fig9_num_posts.dir/fig9_num_posts.cpp.o"
  "CMakeFiles/fig9_num_posts.dir/fig9_num_posts.cpp.o.d"
  "fig9_num_posts"
  "fig9_num_posts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_num_posts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
