file(REMOVE_RECURSE
  "CMakeFiles/ablation_eta.dir/ablation_eta.cpp.o"
  "CMakeFiles/ablation_eta.dir/ablation_eta.cpp.o.d"
  "ablation_eta"
  "ablation_eta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
