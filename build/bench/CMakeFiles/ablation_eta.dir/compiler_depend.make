# Empty compiler generated dependencies file for ablation_eta.
# This may be replaced when dependencies are built.
