file(REMOVE_RECURSE
  "CMakeFiles/ablation_rfh_phases.dir/ablation_rfh_phases.cpp.o"
  "CMakeFiles/ablation_rfh_phases.dir/ablation_rfh_phases.cpp.o.d"
  "ablation_rfh_phases"
  "ablation_rfh_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rfh_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
