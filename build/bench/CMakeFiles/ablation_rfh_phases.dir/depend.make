# Empty dependencies file for ablation_rfh_phases.
# This may be replaced when dependencies are built.
