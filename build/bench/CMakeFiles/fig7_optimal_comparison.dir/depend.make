# Empty dependencies file for fig7_optimal_comparison.
# This may be replaced when dependencies are built.
