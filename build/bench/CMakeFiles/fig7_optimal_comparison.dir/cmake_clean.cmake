file(REMOVE_RECURSE
  "CMakeFiles/fig7_optimal_comparison.dir/fig7_optimal_comparison.cpp.o"
  "CMakeFiles/fig7_optimal_comparison.dir/fig7_optimal_comparison.cpp.o.d"
  "fig7_optimal_comparison"
  "fig7_optimal_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_optimal_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
