file(REMOVE_RECURSE
  "CMakeFiles/npc_reduction.dir/npc_reduction.cpp.o"
  "CMakeFiles/npc_reduction.dir/npc_reduction.cpp.o.d"
  "npc_reduction"
  "npc_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npc_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
