# Empty dependencies file for npc_reduction.
# This may be replaced when dependencies are built.
