# Empty dependencies file for ablation_local_search.
# This may be replaced when dependencies are built.
