file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_search.dir/ablation_local_search.cpp.o"
  "CMakeFiles/ablation_local_search.dir/ablation_local_search.cpp.o.d"
  "ablation_local_search"
  "ablation_local_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
