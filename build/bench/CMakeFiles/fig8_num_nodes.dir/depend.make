# Empty dependencies file for fig8_num_nodes.
# This may be replaced when dependencies are built.
