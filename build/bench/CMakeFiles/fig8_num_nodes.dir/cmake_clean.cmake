file(REMOVE_RECURSE
  "CMakeFiles/fig8_num_nodes.dir/fig8_num_nodes.cpp.o"
  "CMakeFiles/fig8_num_nodes.dir/fig8_num_nodes.cpp.o.d"
  "fig8_num_nodes"
  "fig8_num_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_num_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
