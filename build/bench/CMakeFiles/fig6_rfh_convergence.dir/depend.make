# Empty dependencies file for fig6_rfh_convergence.
# This may be replaced when dependencies are built.
