file(REMOVE_RECURSE
  "CMakeFiles/fig6_rfh_convergence.dir/fig6_rfh_convergence.cpp.o"
  "CMakeFiles/fig6_rfh_convergence.dir/fig6_rfh_convergence.cpp.o.d"
  "fig6_rfh_convergence"
  "fig6_rfh_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rfh_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
