# Empty compiler generated dependencies file for fig1_field_experiment.
# This may be replaced when dependencies are built.
