file(REMOVE_RECURSE
  "CMakeFiles/fig1_field_experiment.dir/fig1_field_experiment.cpp.o"
  "CMakeFiles/fig1_field_experiment.dir/fig1_field_experiment.cpp.o.d"
  "fig1_field_experiment"
  "fig1_field_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_field_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
