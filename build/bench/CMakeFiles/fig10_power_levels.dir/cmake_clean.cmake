file(REMOVE_RECURSE
  "CMakeFiles/fig10_power_levels.dir/fig10_power_levels.cpp.o"
  "CMakeFiles/fig10_power_levels.dir/fig10_power_levels.cpp.o.d"
  "fig10_power_levels"
  "fig10_power_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_power_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
