# Empty compiler generated dependencies file for fig10_power_levels.
# This may be replaced when dependencies are built.
