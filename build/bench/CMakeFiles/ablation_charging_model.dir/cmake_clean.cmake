file(REMOVE_RECURSE
  "CMakeFiles/ablation_charging_model.dir/ablation_charging_model.cpp.o"
  "CMakeFiles/ablation_charging_model.dir/ablation_charging_model.cpp.o.d"
  "ablation_charging_model"
  "ablation_charging_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_charging_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
