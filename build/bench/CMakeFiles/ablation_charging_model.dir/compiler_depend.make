# Empty compiler generated dependencies file for ablation_charging_model.
# This may be replaced when dependencies are built.
