# Empty dependencies file for ablation_idb_delta.
# This may be replaced when dependencies are built.
