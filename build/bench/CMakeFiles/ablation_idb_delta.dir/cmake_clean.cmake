file(REMOVE_RECURSE
  "CMakeFiles/ablation_idb_delta.dir/ablation_idb_delta.cpp.o"
  "CMakeFiles/ablation_idb_delta.dir/ablation_idb_delta.cpp.o.d"
  "ablation_idb_delta"
  "ablation_idb_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_idb_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
