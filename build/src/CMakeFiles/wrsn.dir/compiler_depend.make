# Empty compiler generated dependencies file for wrsn.
# This may be replaced when dependencies are built.
