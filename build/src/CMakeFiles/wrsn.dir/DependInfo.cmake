
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cpp" "src/CMakeFiles/wrsn.dir/core/allocation.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/allocation.cpp.o.d"
  "/root/repo/src/core/baseline.cpp" "src/CMakeFiles/wrsn.dir/core/baseline.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/baseline.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/CMakeFiles/wrsn.dir/core/cost.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/cost.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/CMakeFiles/wrsn.dir/core/exact.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/exact.cpp.o.d"
  "/root/repo/src/core/failures.cpp" "src/CMakeFiles/wrsn.dir/core/failures.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/failures.cpp.o.d"
  "/root/repo/src/core/idb.cpp" "src/CMakeFiles/wrsn.dir/core/idb.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/idb.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/CMakeFiles/wrsn.dir/core/instance.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/instance.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/CMakeFiles/wrsn.dir/core/local_search.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/local_search.cpp.o.d"
  "/root/repo/src/core/pricer.cpp" "src/CMakeFiles/wrsn.dir/core/pricer.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/pricer.cpp.o.d"
  "/root/repo/src/core/rfh.cpp" "src/CMakeFiles/wrsn.dir/core/rfh.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/rfh.cpp.o.d"
  "/root/repo/src/core/solution.cpp" "src/CMakeFiles/wrsn.dir/core/solution.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/core/solution.cpp.o.d"
  "/root/repo/src/energy/charging_model.cpp" "src/CMakeFiles/wrsn.dir/energy/charging_model.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/energy/charging_model.cpp.o.d"
  "/root/repo/src/energy/radio_model.cpp" "src/CMakeFiles/wrsn.dir/energy/radio_model.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/energy/radio_model.cpp.o.d"
  "/root/repo/src/fieldexp/powercast.cpp" "src/CMakeFiles/wrsn.dir/fieldexp/powercast.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/fieldexp/powercast.cpp.o.d"
  "/root/repo/src/geom/field.cpp" "src/CMakeFiles/wrsn.dir/geom/field.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/geom/field.cpp.o.d"
  "/root/repo/src/geom/point.cpp" "src/CMakeFiles/wrsn.dir/geom/point.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/geom/point.cpp.o.d"
  "/root/repo/src/graph/dijkstra.cpp" "src/CMakeFiles/wrsn.dir/graph/dijkstra.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/graph/dijkstra.cpp.o.d"
  "/root/repo/src/graph/reach_graph.cpp" "src/CMakeFiles/wrsn.dir/graph/reach_graph.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/graph/reach_graph.cpp.o.d"
  "/root/repo/src/graph/routing_tree.cpp" "src/CMakeFiles/wrsn.dir/graph/routing_tree.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/graph/routing_tree.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/CMakeFiles/wrsn.dir/io/serialize.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/io/serialize.cpp.o.d"
  "/root/repo/src/npc/cnf.cpp" "src/CMakeFiles/wrsn.dir/npc/cnf.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/npc/cnf.cpp.o.d"
  "/root/repo/src/npc/dpll.cpp" "src/CMakeFiles/wrsn.dir/npc/dpll.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/npc/dpll.cpp.o.d"
  "/root/repo/src/npc/gadget.cpp" "src/CMakeFiles/wrsn.dir/npc/gadget.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/npc/gadget.cpp.o.d"
  "/root/repo/src/sim/charger.cpp" "src/CMakeFiles/wrsn.dir/sim/charger.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/sim/charger.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/wrsn.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/fleet.cpp" "src/CMakeFiles/wrsn.dir/sim/fleet.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/sim/fleet.cpp.o.d"
  "/root/repo/src/sim/network_sim.cpp" "src/CMakeFiles/wrsn.dir/sim/network_sim.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/sim/network_sim.cpp.o.d"
  "/root/repo/src/sim/periodic.cpp" "src/CMakeFiles/wrsn.dir/sim/periodic.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/sim/periodic.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/CMakeFiles/wrsn.dir/sim/schedule.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/sim/schedule.cpp.o.d"
  "/root/repo/src/sim/tour.cpp" "src/CMakeFiles/wrsn.dir/sim/tour.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/sim/tour.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/wrsn.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/wrsn.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/wrsn.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/wrsn.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/wrsn.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/util/timer.cpp.o.d"
  "/root/repo/src/viz/chart.cpp" "src/CMakeFiles/wrsn.dir/viz/chart.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/viz/chart.cpp.o.d"
  "/root/repo/src/viz/svg.cpp" "src/CMakeFiles/wrsn.dir/viz/svg.cpp.o" "gcc" "src/CMakeFiles/wrsn.dir/viz/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
