file(REMOVE_RECURSE
  "libwrsn.a"
)
