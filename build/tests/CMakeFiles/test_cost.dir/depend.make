# Empty dependencies file for test_cost.
# This may be replaced when dependencies are built.
