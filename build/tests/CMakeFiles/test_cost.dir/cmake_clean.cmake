file(REMOVE_RECURSE
  "CMakeFiles/test_cost.dir/test_cost.cpp.o"
  "CMakeFiles/test_cost.dir/test_cost.cpp.o.d"
  "test_cost"
  "test_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
