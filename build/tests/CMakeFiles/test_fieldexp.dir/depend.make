# Empty dependencies file for test_fieldexp.
# This may be replaced when dependencies are built.
