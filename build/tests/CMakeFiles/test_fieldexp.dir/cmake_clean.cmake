file(REMOVE_RECURSE
  "CMakeFiles/test_fieldexp.dir/test_fieldexp.cpp.o"
  "CMakeFiles/test_fieldexp.dir/test_fieldexp.cpp.o.d"
  "test_fieldexp"
  "test_fieldexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fieldexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
