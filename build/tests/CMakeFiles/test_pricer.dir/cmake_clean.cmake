file(REMOVE_RECURSE
  "CMakeFiles/test_pricer.dir/test_pricer.cpp.o"
  "CMakeFiles/test_pricer.dir/test_pricer.cpp.o.d"
  "test_pricer"
  "test_pricer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pricer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
