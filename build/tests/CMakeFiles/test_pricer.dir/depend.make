# Empty dependencies file for test_pricer.
# This may be replaced when dependencies are built.
