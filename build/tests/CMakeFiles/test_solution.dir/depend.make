# Empty dependencies file for test_solution.
# This may be replaced when dependencies are built.
