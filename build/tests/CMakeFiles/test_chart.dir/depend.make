# Empty dependencies file for test_chart.
# This may be replaced when dependencies are built.
