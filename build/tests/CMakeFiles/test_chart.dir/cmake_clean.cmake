file(REMOVE_RECURSE
  "CMakeFiles/test_chart.dir/test_chart.cpp.o"
  "CMakeFiles/test_chart.dir/test_chart.cpp.o.d"
  "test_chart"
  "test_chart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
