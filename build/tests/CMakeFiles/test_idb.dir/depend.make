# Empty dependencies file for test_idb.
# This may be replaced when dependencies are built.
