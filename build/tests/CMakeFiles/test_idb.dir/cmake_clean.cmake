file(REMOVE_RECURSE
  "CMakeFiles/test_idb.dir/test_idb.cpp.o"
  "CMakeFiles/test_idb.dir/test_idb.cpp.o.d"
  "test_idb"
  "test_idb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
