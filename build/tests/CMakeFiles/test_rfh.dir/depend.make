# Empty dependencies file for test_rfh.
# This may be replaced when dependencies are built.
