file(REMOVE_RECURSE
  "CMakeFiles/test_rfh.dir/test_rfh.cpp.o"
  "CMakeFiles/test_rfh.dir/test_rfh.cpp.o.d"
  "test_rfh"
  "test_rfh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rfh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
