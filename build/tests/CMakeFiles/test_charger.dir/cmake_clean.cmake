file(REMOVE_RECURSE
  "CMakeFiles/test_charger.dir/test_charger.cpp.o"
  "CMakeFiles/test_charger.dir/test_charger.cpp.o.d"
  "test_charger"
  "test_charger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
