# Empty dependencies file for test_charger.
# This may be replaced when dependencies are built.
