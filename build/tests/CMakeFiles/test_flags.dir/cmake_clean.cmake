file(REMOVE_RECURSE
  "CMakeFiles/test_flags.dir/test_flags.cpp.o"
  "CMakeFiles/test_flags.dir/test_flags.cpp.o.d"
  "test_flags"
  "test_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
