# Empty dependencies file for test_flags.
# This may be replaced when dependencies are built.
