file(REMOVE_RECURSE
  "CMakeFiles/test_cnf.dir/test_cnf.cpp.o"
  "CMakeFiles/test_cnf.dir/test_cnf.cpp.o.d"
  "test_cnf"
  "test_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
