# Empty dependencies file for test_cnf.
# This may be replaced when dependencies are built.
