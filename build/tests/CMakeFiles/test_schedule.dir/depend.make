# Empty dependencies file for test_schedule.
# This may be replaced when dependencies are built.
