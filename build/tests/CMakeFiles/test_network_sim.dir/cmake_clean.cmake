file(REMOVE_RECURSE
  "CMakeFiles/test_network_sim.dir/test_network_sim.cpp.o"
  "CMakeFiles/test_network_sim.dir/test_network_sim.cpp.o.d"
  "test_network_sim"
  "test_network_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
