file(REMOVE_RECURSE
  "CMakeFiles/test_gadget.dir/test_gadget.cpp.o"
  "CMakeFiles/test_gadget.dir/test_gadget.cpp.o.d"
  "test_gadget"
  "test_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
