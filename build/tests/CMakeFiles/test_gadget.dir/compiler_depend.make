# Empty compiler generated dependencies file for test_gadget.
# This may be replaced when dependencies are built.
