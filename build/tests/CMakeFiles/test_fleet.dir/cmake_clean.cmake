file(REMOVE_RECURSE
  "CMakeFiles/test_fleet.dir/test_fleet.cpp.o"
  "CMakeFiles/test_fleet.dir/test_fleet.cpp.o.d"
  "test_fleet"
  "test_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
