file(REMOVE_RECURSE
  "CMakeFiles/test_allocation.dir/test_allocation.cpp.o"
  "CMakeFiles/test_allocation.dir/test_allocation.cpp.o.d"
  "test_allocation"
  "test_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
