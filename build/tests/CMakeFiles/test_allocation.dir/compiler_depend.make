# Empty compiler generated dependencies file for test_allocation.
# This may be replaced when dependencies are built.
