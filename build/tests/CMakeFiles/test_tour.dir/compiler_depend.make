# Empty compiler generated dependencies file for test_tour.
# This may be replaced when dependencies are built.
