file(REMOVE_RECURSE
  "CMakeFiles/test_tour.dir/test_tour.cpp.o"
  "CMakeFiles/test_tour.dir/test_tour.cpp.o.d"
  "test_tour"
  "test_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
