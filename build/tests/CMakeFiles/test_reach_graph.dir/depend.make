# Empty dependencies file for test_reach_graph.
# This may be replaced when dependencies are built.
