file(REMOVE_RECURSE
  "CMakeFiles/test_reach_graph.dir/test_reach_graph.cpp.o"
  "CMakeFiles/test_reach_graph.dir/test_reach_graph.cpp.o.d"
  "test_reach_graph"
  "test_reach_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reach_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
