file(REMOVE_RECURSE
  "CMakeFiles/test_routing_tree.dir/test_routing_tree.cpp.o"
  "CMakeFiles/test_routing_tree.dir/test_routing_tree.cpp.o.d"
  "test_routing_tree"
  "test_routing_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
