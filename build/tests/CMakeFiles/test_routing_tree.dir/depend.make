# Empty dependencies file for test_routing_tree.
# This may be replaced when dependencies are built.
