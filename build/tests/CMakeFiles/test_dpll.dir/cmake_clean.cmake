file(REMOVE_RECURSE
  "CMakeFiles/test_dpll.dir/test_dpll.cpp.o"
  "CMakeFiles/test_dpll.dir/test_dpll.cpp.o.d"
  "test_dpll"
  "test_dpll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
