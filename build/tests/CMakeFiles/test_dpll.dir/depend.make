# Empty dependencies file for test_dpll.
# This may be replaced when dependencies are built.
