file(REMOVE_RECURSE
  "CMakeFiles/test_dijkstra.dir/test_dijkstra.cpp.o"
  "CMakeFiles/test_dijkstra.dir/test_dijkstra.cpp.o.d"
  "test_dijkstra"
  "test_dijkstra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dijkstra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
