# Empty compiler generated dependencies file for test_dijkstra.
# This may be replaced when dependencies are built.
