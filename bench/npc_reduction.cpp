// Section IV executable: the 3-CNF-SAT -> deployment/routing reduction.
//
// For random formulas of growing size, builds the gadget, solves it exactly
// under the proof's at-most-two-nodes-per-post restriction, and checks the
// equivalence  satisfiable <=> optimal cost <= W.  Also reports how the
// exact search effort grows -- a concrete feel for the NP-hardness.
#include <algorithm>

#include "common.hpp"
#include "core/exact.hpp"
#include "npc/dpll.hpp"
#include "npc/gadget.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 10 : 6);

  struct Shape {
    int vars;
    int clauses;
  };
  const std::vector<Shape> shapes =
      args.paper_scale()
          ? std::vector<Shape>{{3, 3}, {3, 5}, {4, 4}, {4, 6}, {5, 5}, {3, 12}, {4, 16}}
          : std::vector<Shape>{{3, 3}, {3, 5}, {4, 4}};

  util::Table table({"n vars", "m clauses", "posts", "nodes", "sat rate", "agreement",
                     "mean gap cost/W (sat)", "mean gap (unsat)", "exact evals",
                     "solve time [s]"});
  util::Timer timer;  // one lap()-segmented stopwatch for every table row
  for (const auto& shape : shapes) {
    util::RunningStats sat_rate;
    util::RunningStats agreement;
    util::RunningStats sat_gap;
    util::RunningStats unsat_gap;
    util::RunningStats evals;
    util::RunningStats seconds;
    int posts = 0;
    int nodes = 0;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.seed) + run * 13);
      const npc::Cnf cnf = npc::random_3cnf(shape.vars, shape.clauses, rng);
      const npc::Gadget gadget = npc::build_gadget(cnf);
      posts = gadget.instance.num_posts();
      nodes = gadget.instance.num_nodes();

      const bool sat = npc::is_satisfiable(cnf);
      sat_rate.add(sat ? 1.0 : 0.0);

      core::ExactOptions options;
      options.max_per_post = 2;
      timer.lap();  // drop the gadget-construction segment
      const core::ExactResult result = core::solve_exact(gadget.instance, options);
      seconds.add(timer.lap());
      evals.add(static_cast<double>(result.evaluations));

      const double ratio = result.cost / gadget.bound_w;
      const bool cost_within_w = result.cost <= gadget.bound_w * (1.0 + 1e-9);
      agreement.add(cost_within_w == sat ? 1.0 : 0.0);
      (sat ? sat_gap : unsat_gap).add(ratio);
    }
    table.begin_row()
        .add(shape.vars)
        .add(shape.clauses)
        .add(posts)
        .add(nodes)
        .add(sat_rate.mean(), 2)
        .add(agreement.mean(), 2)
        .add(sat_gap.empty() ? 0.0 : sat_gap.mean(), 5)
        .add(unsat_gap.empty() ? 0.0 : unsat_gap.mean(), 5)
        .add(evals.mean(), 0)
        .add(seconds.mean(), 3);
  }
  // Random formulas at low clause/variable ratio are almost always
  // satisfiable; exercise the other direction of the equivalence with the
  // canonical unsatisfiable formula (all 8 polarity combinations of 3
  // variables).
  {
    npc::Cnf unsat;
    unsat.num_vars = 3;
    for (int mask = 0; mask < 8; ++mask) {
      npc::Clause clause;
      for (int v = 0; v < 3; ++v) {
        clause.literals[static_cast<std::size_t>(v)] = npc::Literal{v, ((mask >> v) & 1) != 0};
      }
      unsat.clauses.push_back(clause);
    }
    const npc::Gadget gadget = npc::build_gadget(unsat);
    core::ExactOptions options;
    options.max_per_post = 2;
    timer.lap();  // drop the gadget-construction segment
    const core::ExactResult result = core::solve_exact(gadget.instance, options);
    const double solve_seconds = timer.lap();
    table.begin_row()
        .add(3)
        .add(8)
        .add(gadget.instance.num_posts())
        .add(gadget.instance.num_nodes())
        .add(0.0, 2)
        .add(result.cost > gadget.bound_w ? 1.0 : 0.0, 2)
        .add(0.0, 5)
        .add(result.cost / gadget.bound_w, 5)
        .add(static_cast<double>(result.evaluations), 0)
        .add(solve_seconds, 3);
  }

  bench::emit(table, args,
              "NP-completeness gadget: SAT <=> cost <= W over random formulas (" +
                  std::to_string(runs) +
                  " formulas per shape; last row = the canonical all-polarities "
                  "unsatisfiable formula)");
  std::printf("\nagreement must be 1.00 on every row; sat rows sit at ratio 1.0 (cost == W),\n"
              "unsat rows strictly above 1.0, matching claims (i)/(ii) of Section IV.\n");
  return 0;
}
