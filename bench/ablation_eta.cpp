// Ablation A7: sensitivity to the single-node charging efficiency eta.
//
// The objective is exactly homogeneous in 1/eta, so the optimal deployment
// and routing are invariant to eta and the cost scales as a pure prefactor
// -- which is why the paper never needs to report its eta. This bench
// verifies both facts numerically across three orders of magnitude
// (eta = 0.1% .. 10%, spanning the field experiment's 20 cm .. 1 m regime).
//
// eta is a first-class sweep axis of exp::SweepSpec, so the whole grid is
// one engine run with keep_solutions on; the invariance column re-prices
// the eta=1% IDB deployment on each rebuilt instance.
#include <cmath>

#include "common.hpp"
#include "core/cost.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(3);

  exp::SweepSpec spec;
  spec.name = "ablation_eta";
  spec.side = 300.0;
  spec.posts_axis = {40};
  spec.nodes_axis = {120};
  spec.levels_axis = {3};
  spec.eta_axis = {0.001, 0.003, 0.01, 0.03, 0.1};
  spec.runs = runs;
  spec.base_seed = static_cast<std::uint64_t>(args.seed);
  spec.solvers = {"idb", "rfh"};

  exp::RunnerOptions options;
  options.threads = args.threads;
  options.keep_solutions = true;  // the invariance check prices them below
  exp::ExperimentRunner runner(spec, options);
  const exp::SweepResult result = runner.run();

  const int reference_config = 2;  // eta = 0.01
  util::Table table({"eta", "IDB cost [uJ]", "cost x eta [nJ]", "deployment equivalent to eta=1%",
                     "RFH cost x eta [nJ]"});
  for (std::size_t c = 0; c < spec.eta_axis.size(); ++c) {
    const int config = static_cast<int>(c);
    const double eta = spec.eta_axis[c];
    const double idb = result.cost_stats(config, 0).mean() * 1e6;
    const double rfh = result.cost_stats(config, 1).mean() * 1e6;
    int same_deployment = 0;
    for (int run = 0; run < runs; ++run) {
      const exp::TrialRow& row = result.trials[static_cast<std::size_t>(config * runs + run)];
      const exp::TrialRow& reference =
          result.trials[static_cast<std::size_t>(reference_config * runs + run)];
      const exp::SolverOutcome& idb_here = row.outcomes[0];
      const exp::SolverOutcome& idb_ref = reference.outcomes[0];
      if (!idb_here.ok || !idb_ref.ok || !idb_ref.solution.has_value()) continue;
      // Exact deployment vectors can differ on floating-point ties; the
      // meaningful invariance is that the reference deployment prices
      // identically under this eta.  Paired seeding makes the fields
      // identical, so the instance rebuild below is the same geometry.
      const core::Instance inst = spec.build_instance(row.config, row.field_seed);
      const double ref_cost_here =
          core::optimal_cost_for_deployment(inst, idb_ref.solution->deployment);
      same_deployment += std::abs(ref_cost_here - idb_here.cost) <= idb_here.cost * 1e-9 ? 1 : 0;
    }
    table.begin_row()
        .add(eta, 3)
        .add(idb, 4)
        .add(idb * eta * 1e3, 4)
        .add(same_deployment == runs ? "yes" : "NO")
        .add(rfh * eta * 1e3, 4);
  }
  bench::emit(table, args,
              "Ablation: eta scaling (300x300m, N=40, M=120, " + std::to_string(runs) +
                  " fields). cost x eta must be constant down the column and the "
                  "deployment invariant.");
  return 0;
}
