// Ablation A7: sensitivity to the single-node charging efficiency eta.
//
// The objective is exactly homogeneous in 1/eta, so the optimal deployment
// and routing are invariant to eta and the cost scales as a pure prefactor
// -- which is why the paper never needs to report its eta. This bench
// verifies both facts numerically across three orders of magnitude
// (eta = 0.1% .. 10%, spanning the field experiment's 20 cm .. 1 m regime).
#include <cmath>

#include "common.hpp"
#include "core/idb.hpp"
#include "core/rfh.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(3);

  const std::vector<double> etas{0.001, 0.003, 0.01, 0.03, 0.1};
  util::Table table({"eta", "IDB cost [uJ]", "cost x eta [nJ]", "deployment equivalent to eta=1%",
                     "RFH cost x eta [nJ]"});
  for (const double eta : etas) {
    util::RunningStats idb_cost;
    util::RunningStats rfh_cost;
    int same_deployment = 0;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.seed) + run);
      const core::Instance reference =
          bench::make_paper_instance(40, 120, 300.0, 3, rng, 0.01);
      const core::Instance inst = core::Instance::geometric(
          *reference.field(), reference.radio(), energy::ChargingModel::linear(eta), 120);
      const auto idb = core::solve_idb(inst);
      const auto idb_ref = core::solve_idb(reference);
      idb_cost.add(idb.cost * 1e6);
      rfh_cost.add(core::solve_rfh(inst).cost * 1e6);
      // Exact deployment vectors can differ on floating-point ties; the
      // meaningful invariance is that the reference deployment prices
      // identically under this eta.
      const double ref_cost_here =
          core::optimal_cost_for_deployment(inst, idb_ref.solution.deployment);
      same_deployment += std::abs(ref_cost_here - idb.cost) <= idb.cost * 1e-9 ? 1 : 0;
    }
    table.begin_row()
        .add(eta, 3)
        .add(idb_cost.mean(), 4)
        .add(idb_cost.mean() * eta * 1e3, 4)
        .add(same_deployment == runs ? "yes" : "NO")
        .add(rfh_cost.mean() * eta * 1e3, 4);
  }
  bench::emit(table, args,
              "Ablation: eta scaling (300x300m, N=40, M=120, " + std::to_string(runs) +
                  " fields). cost x eta must be constant down the column and the "
                  "deployment invariant.");
  return 0;
}
