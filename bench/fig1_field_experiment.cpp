// Reproduces Table II / Fig. 1: the Powercast field experiment.
//
// Paper protocol: 40 trials per cell; cells = #sensors {1,2,4,6} x
// charger distance {20..100 cm} x sensor spacing {5,10 cm}. Reported:
// average received power per node. The paper's qualitative findings this
// bench demonstrates:
//   * single-node charging efficiency < 1% at 20 cm, collapsing with range;
//   * per-node power ~ flat from 2 to 6 sensors  => eta(m) ~ linear in m;
//   * the 1 -> 2 dip is visible at 5 cm spacing and shrinks at 10 cm.
#include <algorithm>

#include "common.hpp"
#include "fieldexp/powercast.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int trials = args.runs_or(40);  // the paper's 40
  const fieldexp::PowercastConfig cfg{};
  util::Rng rng(static_cast<std::uint64_t>(args.seed));

  const std::vector<int> counts{1, 2, 4, 6};
  const std::vector<double> distances{0.20, 0.40, 0.60, 0.80, 1.00};

  for (const double spacing : {0.05, 0.10}) {
    util::Table table({"charger distance", "m=1 [mW/node]", "m=2 [mW/node]", "m=4 [mW/node]",
                       "m=6 [mW/node]", "eta(6) [%]"});
    viz::ChartOptions chart_options;
    chart_options.title = spacing < 0.075 ? "Fig. 1(a): spacing 5 cm" : "Fig. 1(b): spacing 10 cm";
    chart_options.x_label = "number of sensors charged simultaneously";
    chart_options.y_label = "avg received power per node [mW]";
    viz::LineChart chart(chart_options);
    std::vector<std::vector<double>> chart_ys(distances.size());
    for (const double d : distances) {
      table.begin_row();
      char label[32];
      std::snprintf(label, sizeof label, "%.0f cm", d * 100.0);
      table.add(label);
      double eta6 = 0.0;
      for (const int m : counts) {
        const auto summary = fieldexp::run_trials(cfg, {m, d, spacing}, trials, rng);
        table.add(summary.per_node_power_w.mean * 1e3, 4);
        const std::size_t di = static_cast<std::size_t>(
            std::find(distances.begin(), distances.end(), d) - distances.begin());
        chart_ys[di].push_back(summary.per_node_power_w.mean * 1e3);
        if (m == 6) eta6 = summary.network_efficiency;
      }
      table.add(eta6 * 100.0, 4);
    }
    for (std::size_t di = 0; di < distances.size(); ++di) {
      char name[32];
      std::snprintf(name, sizeof name, "%.0f cm", distances[di] * 100.0);
      chart.add_series(name, std::vector<double>(counts.begin(), counts.end()), chart_ys[di]);
    }
    bench::maybe_save_chart(chart, args,
                            spacing < 0.075 ? "fig1a_field_experiment.svg"
                                            : "fig1b_field_experiment.svg");
    char title[80];
    std::snprintf(title, sizeof title,
                  "Fig. 1(%c): avg received power per node, spacing %.0f cm (%d trials)",
                  spacing < 0.075 ? 'a' : 'b', spacing * 100.0, trials);
    bench::emit(table, args, title);
  }

  // Observation summary the paper draws from the figure.
  util::Table summary({"spacing", "eta(m) slope / eta(1)", "linearity r^2",
                       "1->2 per-node dip [%]", "2->6 per-node ratio"});
  for (const double spacing : {0.05, 0.10}) {
    const auto fit = fieldexp::efficiency_linearity(cfg, 0.2, spacing, {1, 2, 3, 4, 5, 6});
    const double eta1 = fieldexp::single_node_efficiency(cfg, 0.2);
    auto per_node = [&](int m) {
      const auto p = fieldexp::received_power_per_node(cfg, {m, 0.2, spacing});
      double total = 0.0;
      for (double v : p) total += v;
      return total / m;
    };
    summary.begin_row();
    summary.add(spacing < 0.075 ? "5 cm" : "10 cm");
    summary.add(fit.slope / eta1, 3);
    summary.add(fit.r_squared, 5);
    summary.add((1.0 - per_node(2) / per_node(1)) * 100.0, 2);
    summary.add(per_node(6) / per_node(2), 3);
  }
  bench::emit(summary, args, "Section II observations (noise-free model)");

  util::Table eff({"charger distance", "single-node efficiency [%]"});
  for (const double d : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    char label[32];
    std::snprintf(label, sizeof label, "%.0f cm", d * 100.0);
    eff.begin_row().add(label).add(fieldexp::single_node_efficiency(cfg, d) * 100.0, 5);
  }
  bench::emit(eff, args, "Single-node charging efficiency vs distance (Section II)");
  return 0;
}
