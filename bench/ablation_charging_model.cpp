// Ablation A3 (DESIGN.md): sensitivity to the charging-gain model k(m).
//
// The paper assumes k(m) = m ("linear"); the field experiment only shows
// linear-or-sublinear. This bench re-solves the Fig. 8 midpoint under
// sub-linear and saturating gains and reports how much of the co-design
// advantage survives.
#include "common.hpp"
#include "core/baseline.hpp"
#include "core/idb.hpp"
#include "core/rfh.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);

  struct Model {
    const char* name;
    energy::ChargingModel charging;
  };
  const std::vector<Model> models{
      {"linear k(m)=m (paper)", energy::ChargingModel::linear(0.01)},
      {"sub-linear k(m)=m^0.8", energy::ChargingModel::sub_linear(0.01, 0.8)},
      {"sub-linear k(m)=m^0.5", energy::ChargingModel::sub_linear(0.01, 0.5)},
      {"saturating cap=4", energy::ChargingModel::saturating(0.01, 4.0)},
      {"saturating cap=8", energy::ChargingModel::saturating(0.01, 8.0)},
  };

  util::Table table({"charging model", "IDB [uJ]", "RFH [uJ]", "Balanced [uJ]",
                     "co-design gain vs balanced [%]", "max m (IDB)"});
  for (const auto& model : models) {
    util::RunningStats idb_cost;
    util::RunningStats rfh_cost;
    util::RunningStats base_cost;
    util::RunningStats max_m;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.seed) + run);
      const core::Instance probe = bench::make_paper_instance(60, 240, 400.0, 3, rng);
      const core::Instance inst = core::Instance::geometric(
          *probe.field(), probe.radio(), model.charging, 240);
      const auto idb = core::solve_idb(inst);
      idb_cost.add(idb.cost * 1e6);
      rfh_cost.add(core::solve_rfh(inst).cost * 1e6);
      base_cost.add(core::solve_balanced_baseline(inst).cost * 1e6);
      int biggest = 0;
      for (int m : idb.solution.deployment) biggest = std::max(biggest, m);
      max_m.add(biggest);
    }
    table.begin_row()
        .add(model.name)
        .add(idb_cost.mean(), 4)
        .add(rfh_cost.mean(), 4)
        .add(base_cost.mean(), 4)
        .add((1.0 - idb_cost.mean() / base_cost.mean()) * 100.0, 2)
        .add(max_m.mean(), 1);
  }
  bench::emit(table, args,
              "Ablation: charging-gain shape (400x400m, N=60, M=240, avg of " +
                  std::to_string(runs) + " fields)");
  return 0;
}
