// Ablation A3 (DESIGN.md): sensitivity to the charging-gain model k(m).
//
// The paper assumes k(m) = m ("linear"); the field experiment only shows
// linear-or-sublinear. This bench re-solves the Fig. 8 midpoint under
// sub-linear and saturating gains and reports how much of the co-design
// advantage survives.  One exp::ExperimentRunner sweep per gain shape
// (the charging model is spec-level, not an axis); paired seeding keeps
// the fields identical across shapes.
#include "common.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);

  struct Model {
    const char* name;
    const char* kind;
    double param;
  };
  const std::vector<Model> models{
      {"linear k(m)=m (paper)", "linear", 1.0},
      {"sub-linear k(m)=m^0.8", "sublinear", 0.8},
      {"sub-linear k(m)=m^0.5", "sublinear", 0.5},
      {"saturating cap=4", "saturating", 4.0},
      {"saturating cap=8", "saturating", 8.0},
  };

  util::Table table({"charging model", "IDB [uJ]", "RFH [uJ]", "Balanced [uJ]",
                     "co-design gain vs balanced [%]", "max m (IDB)"});
  for (const auto& model : models) {
    exp::SweepSpec spec;
    spec.name = std::string("ablation_charging_") + model.kind;
    spec.side = 400.0;
    spec.charging_kind = model.kind;
    spec.charging_param = model.param;
    spec.posts_axis = {60};
    spec.nodes_axis = {240};
    spec.levels_axis = {3};
    spec.eta_axis = {0.01};
    spec.runs = runs;
    spec.base_seed = static_cast<std::uint64_t>(args.seed);
    spec.solvers = {"idb", "rfh", "balanced"};
    const exp::SweepResult result = bench::run_sweep(spec, args);

    const double idb = result.cost_stats(0, 0).mean() * 1e6;
    const double rfh = result.cost_stats(0, 1).mean() * 1e6;
    const double balanced = result.cost_stats(0, 2).mean() * 1e6;
    table.begin_row()
        .add(model.name)
        .add(idb, 4)
        .add(rfh, 4)
        .add(balanced, 4)
        .add((1.0 - idb / balanced) * 100.0, 2)
        .add(result.diag_stats(0, 0, "sol/max_m").mean(), 1);
  }
  bench::emit(table, args,
              "Ablation: charging-gain shape (400x400m, N=60, M=240, avg of " +
                  std::to_string(runs) + " fields)");
  return 0;
}
