// Ablation A6: charging-policy comparison (Google Benchmark).
//
// Co-simulates one planned network under every registered charging policy
// at two post-destruction hazard levels and reports, per policy, the
// wall-clock cost of the co-simulation plus the outcomes that matter
// (delivery ratio, dead nodes, RF energy per round, travel energy) as
// benchmark counters.  The BM_policy_* rows are trajectory rows in CI
// (scripts/bench_check.py --track '^BM_policy_'): their drift is printed,
// never gated, because the interesting signal is the counters, not the
// nanoseconds.
//
// Arg(0) = fault-free, Arg(10) = 1% per-round post-destruction hazard.
//
// Flags (before the --benchmark_* ones): --seed, --scale=default|paper
// (paper doubles the field), --runs=<n> as --benchmark_repetitions.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common.hpp"
#include "core/charger_placement.hpp"
#include "core/rfh.hpp"
#include "obs/build_info.hpp"
#include "sim/charger_sim.hpp"
#include "sim/charging_policy.hpp"
#include "sim/network_sim.hpp"

namespace {

using namespace wrsn;

std::int64_t g_seed = 42;
int g_posts = 12;
int g_nodes = 40;
std::uint64_t g_rounds = 400;

struct Plan {
  core::Instance instance;
  core::Solution solution;
};

const Plan& plan() {
  static const Plan fixture = [] {
    util::Rng rng(static_cast<std::uint64_t>(g_seed));
    core::Instance inst =
        bench::make_paper_instance(g_posts, g_nodes, 200.0, 3, rng);
    core::Solution solution = core::solve_rfh(inst).solution;
    return Plan{std::move(inst), std::move(solution)};
  }();
  return fixture;
}

sim::NetworkConfig network_config(double hazard) {
  sim::NetworkConfig config;
  config.bits_per_report = 4096;
  config.battery_capacity_j = 0.02;
  config.faults.seed = 77;
  config.faults.post_destruction_hazard = hazard;
  return config;
}

sim::ChargerConfig charger_config() {
  sim::ChargerConfig config;
  config.speed_mps = 10.0;
  config.radiated_power_w = 50.0;
  return config;
}

/// One policy co-simulation; `state.range(0)` is the hazard in per-mille.
void run_policy(benchmark::State& state, const std::string& spec) {
  const double hazard = static_cast<double>(state.range(0)) / 1000.0;
  double delivery = 0.0;
  double dead = 0.0;
  double rf_per_round = 0.0;
  double travel = 0.0;
  for (auto _ : state) {
    sim::NetworkSim network(plan().instance, plan().solution, network_config(hazard));
    std::vector<sim::FixedCharger> fixed;
    int fleet = 1;
    if (spec == "fixed") {
      core::PlacementConfig placement_cfg;
      placement_cfg.coverage_radius_m = 50.0;
      placement_cfg.radiated_power_w = 5.0;
      placement_cfg.bits_per_round = 4096;
      const core::PlacementResult placement =
          core::place_chargers(plan().instance, plan().solution, placement_cfg);
      fixed = sim::fixed_chargers_from(placement, placement_cfg.radiated_power_w,
                                      placement_cfg.coverage_radius_m);
      fleet = 0;
    }
    sim::ChargerSim charger(network, charger_config(), fleet,
                            sim::make_charging_policy(spec), std::move(fixed));
    charger.run(g_rounds);
    delivery = network.delivery_ratio();
    dead = network.dead_node_count();
    rf_per_round =
        (charger.stats().radiated_j + charger.stats().fixed_radiated_j) /
        static_cast<double>(charger.stats().rounds);
    travel = charger.stats().travel_j;
    benchmark::DoNotOptimize(charger.stats().radiated_j);
  }
  state.counters["delivery"] = delivery;
  state.counters["dead_nodes"] = dead;
  state.counters["rf_per_round_mj"] = rf_per_round * 1e3;
  state.counters["travel_j"] = travel;
}

void BM_policy_nearest_deficit(benchmark::State& state) {
  run_policy(state, "nearest-deficit");
}
void BM_policy_threshold(benchmark::State& state) { run_policy(state, "threshold"); }
void BM_policy_periodic(benchmark::State& state) {
  run_policy(state, "periodic:every=15");
}
void BM_policy_lookahead(benchmark::State& state) { run_policy(state, "lookahead"); }
void BM_policy_adaptive(benchmark::State& state) { run_policy(state, "adaptive"); }
void BM_policy_fixed(benchmark::State& state) { run_policy(state, "fixed"); }

BENCHMARK(BM_policy_nearest_deficit)->Arg(0)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_policy_threshold)->Arg(0)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_policy_periodic)->Arg(0)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_policy_lookahead)->Arg(0)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_policy_adaptive)->Arg(0)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_policy_fixed)->Arg(0)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  g_seed = args.seed;
  g_posts = args.paper_scale() ? 24 : 12;
  g_nodes = args.paper_scale() ? 80 : 40;
  g_rounds = args.paper_scale() ? 1000 : 400;
  std::vector<char*> bench_argv(argv, argv + argc);
  std::string repetitions;
  if (args.runs > 0) {
    repetitions = "--benchmark_repetitions=" + std::to_string(args.runs);
    bench_argv.push_back(repetitions.data());
  }
  benchmark::AddCustomContext("wrsn_build_type", wrsn::obs::build_info().build_type);
  benchmark::AddCustomContext("wrsn_git_sha", wrsn::obs::build_info().git_sha);
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
