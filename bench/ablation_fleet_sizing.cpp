// Ablation A6: charger-fleet sizing vs network scale (extension).
//
// The paper assumes charging always arrives in time; sim/fleet makes the
// assumption's price visible: how many chargers does it take as the network
// grows, and how tight is the analytic duty-cycle lower bound B*C/(tau*P)?
#include "common.hpp"
#include "core/rfh.hpp"
#include "sim/fleet.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 5 : 2);
  const std::uint64_t rounds = args.paper_scale() ? 2000 : 800;

  sim::NetworkConfig net_cfg;
  net_cfg.bits_per_report = 4096;
  net_cfg.battery_capacity_j = 0.02;
  sim::ChargerConfig charger_cfg;
  charger_cfg.speed_mps = 2.0;
  charger_cfg.radiated_power_w = 20.0;
  charger_cfg.low_watermark = 0.5;

  struct Scale {
    int posts;
    int nodes;
    double side;
  };
  const std::vector<Scale> scales{{8, 24, 150.0}, {12, 36, 250.0}, {16, 48, 300.0},
                                  {20, 60, 350.0}};

  util::Table table({"N", "M", "side [m]", "analytic lower bound", "min fleet (simulated)",
                     "charger duty at min fleet", "visits/round"});
  for (const Scale& scale : scales) {
    util::RunningStats lower;
    util::RunningStats min_fleet;
    util::RunningStats duty;
    util::RunningStats visit_rate;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.seed) + run * 7);
      const core::Instance inst =
          bench::make_paper_instance(scale.posts, scale.nodes, scale.side, 3, rng);
      const auto plan = core::solve_rfh(inst);
      const int bound = sim::fleet_size_lower_bound(inst, plan.solution, charger_cfg,
                                                    net_cfg.bits_per_report);
      const int k = sim::find_min_fleet(inst, plan.solution, charger_cfg, net_cfg, rounds, 10);
      lower.add(bound);
      min_fleet.add(k);
      if (k <= 10) {
        sim::NetworkSim net(inst, plan.solution, net_cfg);
        sim::FleetSim fleet(net, charger_cfg, k);
        fleet.run(rounds);
        duty.add(fleet.stats().radiated_j /
                 (charger_cfg.radiated_power_w * k * fleet.stats().rounds *
                  charger_cfg.round_period_s));
        visit_rate.add(static_cast<double>(fleet.stats().visits) /
                       static_cast<double>(fleet.stats().rounds));
      }
    }
    table.begin_row()
        .add(scale.posts)
        .add(scale.nodes)
        .add(scale.side, 0)
        .add(lower.mean(), 2)
        .add(min_fleet.mean(), 2)
        .add(duty.empty() ? 0.0 : duty.mean(), 4)
        .add(visit_rate.empty() ? 0.0 : visit_rate.mean(), 3);
  }
  bench::emit(table, args,
              "Ablation: charger-fleet sizing vs network scale (RFH plans, " +
                  std::to_string(runs) + " fields per row, " + std::to_string(rounds) +
                  " rounds)");
  std::printf("\nthe gap between the simulated minimum and the duty-cycle bound is the\n"
              "price of travel time and battery granularity the bound ignores.\n");
  return 0;
}
