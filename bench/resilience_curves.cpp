// Online resilience curves: delivery ratio vs fault hazard, per solver.
//
// The paper's robustness story is offline (multi-node posts tolerate node
// loss, ablation_resilience.cpp prices failure sets after the fact).  This
// bench runs the *online* counterpart on sim::NetworkSim's fault machinery:
// each solver's plan is simulated for a few hundred rounds under a sweep of
// per-round post-destruction hazards with no repair, so the delivery-ratio
// curves expose how much traffic each routing tree's shape puts at risk
// (deep charging-aware trees vs the flatter min-hop baseline).  A second
// sweep holds the hazard fixed and compares the repair policies themselves
// (none / reroute / maintain) on the IDB plan, including repair latency.
// Under immediate reroute the repair lands in the same round as the fault,
// so delivery is solver-independent -- which is why the solver comparison
// runs without repair.
//
// Everything runs through exp::ExperimentRunner, so rows are bit-identical
// for any --threads and land in the standard CSV/JSON formats
// (docs/formats.md).
#include "common.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(3);
  const std::vector<double> hazards = {0.0, 0.002, 0.005, 0.01, 0.02};

  exp::SweepSpec spec;
  spec.name = "resilience_curves";
  // Denser geometry than the paper sweeps (200m side, 4 power levels): the
  // fault story needs alternative paths near the base station.  On sparse
  // fields the base often has a single gateway post, and once that dies no
  // repair policy can help -- every curve collapses to the same line.
  spec.side = 200.0;
  spec.posts_axis = {40};
  spec.nodes_axis = {160};
  spec.levels_axis = {4};
  spec.eta_axis = {0.01};
  spec.hazard_axis = hazards;
  spec.runs = runs;
  spec.base_seed = static_cast<std::uint64_t>(args.seed);
  spec.solvers = {"rfh", "idb", "minhop"};
  spec.sim_rounds = args.paper_scale() ? 1000 : 200;
  spec.sim_repair = "none";

  const exp::SweepResult result = bench::run_sweep(spec, args);

  util::Table table({"hazard/round", "RFH delivery", "IDB delivery", "min-hop delivery",
                     "destroyed posts"});
  std::vector<std::vector<double>> delivery(spec.solvers.size());
  for (std::size_t h = 0; h < hazards.size(); ++h) {
    const int config = static_cast<int>(h);
    for (std::size_t s = 0; s < spec.solvers.size(); ++s) {
      delivery[s].push_back(
          result.diag_stats(config, static_cast<int>(s), "sim/delivery_ratio").mean());
    }
    table.begin_row()
        .add(hazards[h], 3)
        .add(delivery[0].back(), 4)
        .add(delivery[1].back(), 4)
        .add(delivery[2].back(), 4)
        .add(result.diag_stats(config, 1, "sim/destroyed_posts").mean(), 2);
  }
  bench::emit(table, args,
              "Online resilience (200x200m, N=40, M=160, " + std::to_string(spec.sim_rounds) +
                  " rounds, no repair, " + std::to_string(runs) +
                  " fields): delivery ratio vs per-round post-destruction hazard");

  viz::ChartOptions chart_options;
  chart_options.title = "Delivery ratio vs fault hazard (no repair)";
  chart_options.x_label = "post destruction hazard per round";
  chart_options.y_label = "delivered / originated bits";
  viz::LineChart chart(chart_options);
  chart.add_series("RFH", hazards, delivery[0]);
  chart.add_series("IDB", hazards, delivery[1]);
  chart.add_series("min-hop", hazards, delivery[2]);
  bench::maybe_save_chart(chart, args, "resilience_curves.svg");

  // Repair-policy comparison at a fixed hazard, same fields and fault
  // sequences for all three policies (the spec seeds are identical).
  util::Table policies({"repair policy", "delivery ratio", "dropped bits", "reroutes",
                        "repair latency [rounds]"});
  const double fixed_hazard = 0.01;
  for (const std::string policy : {"none", "reroute", "maintain"}) {
    exp::SweepSpec policy_spec = spec;
    policy_spec.name = "resilience_policies_" + policy;
    policy_spec.hazard_axis = {fixed_hazard};
    policy_spec.solvers = {"idb"};
    policy_spec.sim_repair = policy;
    const exp::SweepResult policy_result = bench::run_sweep(policy_spec, args);
    policies.begin_row()
        .add(policy)
        .add(policy_result.diag_stats(0, 0, "sim/delivery_ratio").mean(), 4)
        .add(policy_result.diag_stats(0, 0, "sim/dropped_bits").mean(), 0)
        .add(policy_result.diag_stats(0, 0, "sim/reroutes").mean(), 1)
        .add(policy_result.diag_stats(0, 0, "sim/repair_latency_mean").mean(), 2);
  }
  bench::emit(policies, args,
              "Repair policies on the IDB plan (hazard " + std::to_string(fixed_hazard) +
                  "/round): buffering alone vs incremental reroute vs periodic maintenance");
  return 0;
}
