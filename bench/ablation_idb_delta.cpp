// Ablation A2 (DESIGN.md): IDB's delta parameter -- quality vs runtime --
// and the paper's "IDB runs much slower [than RFH]" claim, measured with
// google-benchmark.
//
// Table: solution quality per delta. Benchmarks: wall time per solver.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/idb.hpp"
#include "core/rfh.hpp"

using namespace wrsn;

namespace {

/// One shared mid-size instance so timings are comparable.
const core::Instance& shared_instance() {
  static const core::Instance inst = [] {
    util::Rng rng(4242);
    return bench::make_paper_instance(50, 200, 350.0, 3, rng);
  }();
  return inst;
}

void BM_Rfh(benchmark::State& state) {
  const auto& inst = shared_instance();
  core::RfhOptions options;
  options.iterations = static_cast<int>(state.range(0));
  double cost = 0.0;
  for (auto _ : state) {
    cost = core::solve_rfh(inst, options).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["cost_uJ"] = cost * 1e6;
}
BENCHMARK(BM_Rfh)->Arg(1)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_Idb(benchmark::State& state) {
  const auto& inst = shared_instance();
  core::IdbOptions options;
  options.delta = static_cast<int>(state.range(0));
  double cost = 0.0;
  for (auto _ : state) {
    cost = core::solve_idb(inst, options).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["cost_uJ"] = cost * 1e6;
}
BENCHMARK(BM_Idb)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(3);

  // Quality sweep across delta. delta=4 enumerates C(N+3,4) candidates per
  // round and takes ~30s; it only runs at --scale=paper.
  util::Table table({"solver", "cost [uJ]", "evaluations", "time [s]"});
  const std::vector<int> deltas = args.paper_scale() ? std::vector<int>{1, 2, 4}
                                                     : std::vector<int>{1, 2};
  util::Timer timer;  // one lap()-segmented stopwatch for every table row
  for (const int delta : deltas) {
    util::RunningStats cost;
    util::RunningStats evals;
    util::RunningStats seconds;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.seed) + run);
      const core::Instance inst = bench::make_paper_instance(40, 120, 300.0, 3, rng);
      timer.lap();  // drop the field-generation segment
      const auto result = core::solve_idb(inst, core::IdbOptions{delta, false});
      seconds.add(timer.lap());
      cost.add(result.cost * 1e6);
      evals.add(static_cast<double>(result.evaluations));
    }
    table.begin_row()
        .add("IDB delta=" + std::to_string(delta))
        .add(cost.mean(), 4)
        .add(evals.mean(), 0)
        .add(seconds.mean(), 4);
  }
  {
    util::RunningStats cost;
    util::RunningStats seconds;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.seed) + run);
      const core::Instance inst = bench::make_paper_instance(40, 120, 300.0, 3, rng);
      timer.lap();  // drop the field-generation segment
      cost.add(core::solve_rfh(inst).cost * 1e6);
      seconds.add(timer.lap());
    }
    table.begin_row().add("RFH (7 iters)").add(cost.mean(), 4).add("-").add(seconds.mean(), 4);
  }
  bench::emit(table, args,
              "Ablation: IDB delta quality/runtime (N=40, M=120, avg of " +
                  std::to_string(runs) + " fields)");

  // google-benchmark timing section: forward only --benchmark_* flags so
  // our own flags do not confuse its parser.
  std::vector<char*> bench_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark", 0) == 0) bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
