// Ablation A2 (DESIGN.md): IDB's delta parameter -- quality vs runtime --
// and the paper's "IDB runs much slower [than RFH]" claim, measured with
// google-benchmark.
//
// Table: solution quality per delta. Benchmarks: wall time per solver.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/idb.hpp"
#include "core/rfh.hpp"

using namespace wrsn;

namespace {

/// One shared mid-size instance so timings are comparable.
const core::Instance& shared_instance() {
  static const core::Instance inst = [] {
    util::Rng rng(4242);
    return bench::make_paper_instance(50, 200, 350.0, 3, rng);
  }();
  return inst;
}

void BM_Rfh(benchmark::State& state) {
  const auto& inst = shared_instance();
  core::RfhOptions options;
  options.iterations = static_cast<int>(state.range(0));
  double cost = 0.0;
  for (auto _ : state) {
    cost = core::solve_rfh(inst, options).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["cost_uJ"] = cost * 1e6;
}
BENCHMARK(BM_Rfh)->Arg(1)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_Idb(benchmark::State& state) {
  const auto& inst = shared_instance();
  core::IdbOptions options;
  options.delta = static_cast<int>(state.range(0));
  double cost = 0.0;
  for (auto _ : state) {
    cost = core::solve_idb(inst, options).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["cost_uJ"] = cost * 1e6;
}
BENCHMARK(BM_Idb)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(3);

  // Quality sweep across delta, run through exp::ExperimentRunner. delta=4
  // enumerates C(N+3,4) candidates per round and takes ~30s; it only runs
  // at --scale=paper.
  util::Table table({"solver", "cost [uJ]", "evaluations", "time [s]"});
  exp::SweepSpec spec;
  spec.name = "ablation_idb_delta";
  spec.side = 300.0;
  spec.posts_axis = {40};
  spec.nodes_axis = {120};
  spec.levels_axis = {3};
  spec.eta_axis = {0.01};
  spec.runs = runs;
  spec.base_seed = static_cast<std::uint64_t>(args.seed);
  spec.solvers = args.paper_scale()
                     ? std::vector<std::string>{"idb:delta=1", "idb:delta=2", "idb:delta=4",
                                                "rfh"}
                     : std::vector<std::string>{"idb:delta=1", "idb:delta=2", "rfh"};
  const exp::SweepResult result = bench::run_sweep(spec, args);
  const int rfh_index = static_cast<int>(spec.solvers.size()) - 1;
  for (int s = 0; s < rfh_index; ++s) {
    table.begin_row()
        .add("IDB delta=" + spec.solvers[static_cast<std::size_t>(s)].substr(10))
        .add(result.cost_stats(0, s).mean() * 1e6, 4)
        .add(result.diag_stats(0, s, "idb/evaluations").mean(), 0)
        .add(bench::sweep_seconds(result, 0, s).mean(), 4);
  }
  table.begin_row()
      .add("RFH (7 iters)")
      .add(result.cost_stats(0, rfh_index).mean() * 1e6, 4)
      .add("-")
      .add(bench::sweep_seconds(result, 0, rfh_index).mean(), 4);
  bench::emit(table, args,
              "Ablation: IDB delta quality/runtime (N=40, M=120, avg of " +
                  std::to_string(runs) + " fields)");

  // google-benchmark timing section: forward only --benchmark_* flags so
  // our own flags do not confuse its parser.
  std::vector<char*> bench_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark", 0) == 0) bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
