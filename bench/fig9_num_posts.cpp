// Reproduces Fig. 9: impact of the number of posts.
//
// Paper setup: 500m x 500m, M = 600 nodes, N in {100,...,300}, average of
// 20 random fields. Finding: "a similar trend as Fig. 8" -- IDB(delta=1)
// stays ahead of RFH across the sweep.
//
// Runs on exp::ExperimentRunner; paired seeding keeps the cost columns
// identical to the legacy per-bench loops.
#include "common.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);

  exp::SweepSpec spec;
  spec.name = "fig9";
  spec.side = 500.0;
  spec.posts_axis = {100, 150, 200, 250, 300};
  spec.nodes_axis = {600};
  spec.levels_axis = {3};
  spec.eta_axis = {0.01};
  spec.runs = runs;
  spec.base_seed = static_cast<std::uint64_t>(args.seed);
  spec.solvers = {"idb", "rfh", "balanced"};
  const exp::SweepResult result = bench::run_sweep(spec, args);

  util::Table table({"N", "IDB d=1 [uJ]", "RFH [uJ]", "Balanced [uJ]", "RFH/IDB",
                     "IDB time [s]", "RFH time [s]"});
  std::vector<double> xs;
  std::vector<double> idb_series;
  std::vector<double> rfh_series;
  std::vector<double> base_series;
  for (std::size_t c = 0; c < spec.posts_axis.size(); ++c) {
    const int config = static_cast<int>(c);
    const double idb = result.cost_stats(config, 0).mean() * 1e6;
    const double rfh = result.cost_stats(config, 1).mean() * 1e6;
    const double balanced = result.cost_stats(config, 2).mean() * 1e6;
    table.begin_row()
        .add(spec.posts_axis[c])
        .add(idb, 4)
        .add(rfh, 4)
        .add(balanced, 4)
        .add(rfh / idb, 4)
        .add(bench::sweep_seconds(result, config, 0).mean(), 3)
        .add(bench::sweep_seconds(result, config, 1).mean(), 3);
    xs.push_back(spec.posts_axis[c]);
    idb_series.push_back(idb);
    rfh_series.push_back(rfh);
    base_series.push_back(balanced);
  }
  bench::emit(table, args,
              "Fig. 9: cost vs number of posts (500x500m, M=600, avg of " +
                  std::to_string(runs) + " fields)");
  {
    viz::ChartOptions options;
    options.title = "Fig. 9: impact of the number of posts";
    options.x_label = "number of posts N";
    options.y_label = "total recharging cost [uJ]";
    viz::LineChart chart(options);
    chart.add_series("IDB d=1", xs, idb_series);
    chart.add_series("RFH", xs, rfh_series);
    chart.add_series("Balanced baseline", xs, base_series);
    bench::maybe_save_chart(chart, args, "fig9_num_posts.svg");
  }
  std::printf("[fig9] %d trials in %.1f s via the experiment engine\n",
              spec.num_trials(), result.wall_seconds);
  return 0;
}
