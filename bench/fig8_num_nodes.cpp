// Reproduces Fig. 8: impact of the number of sensor nodes in large networks.
//
// Paper setup: 500m x 500m, N = 100 posts, M in {200,...,1000}, average of
// 20 random fields. Finding: IDB(delta=1) leads RFH by ~5%, both fall as M
// grows; RFH is far cheaper to run (see the runtime column and
// ablation_idb_delta).
//
// The trial grid runs on exp::ExperimentRunner (one ~30-line spec + this
// formatter); paired seeding reproduces the legacy `Rng(seed + run)` fields
// exactly, so the cost columns match the pre-engine bench bit for bit.
#include "common.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);

  exp::SweepSpec spec;
  spec.name = "fig8";
  spec.side = 500.0;
  spec.posts_axis = {100};
  spec.nodes_axis = {200, 400, 600, 800, 1000};
  spec.levels_axis = {3};
  spec.eta_axis = {0.01};
  spec.runs = runs;
  spec.base_seed = static_cast<std::uint64_t>(args.seed);
  spec.solvers = {"idb", "rfh", "balanced"};
  const exp::SweepResult result = bench::run_sweep(spec, args);

  util::Table table({"M", "IDB d=1 [uJ]", "RFH [uJ]", "Balanced [uJ]", "RFH/IDB",
                     "IDB time [s]", "RFH time [s]"});
  std::vector<double> xs;
  std::vector<double> idb_series;
  std::vector<double> rfh_series;
  std::vector<double> base_series;
  for (std::size_t c = 0; c < spec.nodes_axis.size(); ++c) {
    const int config = static_cast<int>(c);
    const double idb = result.cost_stats(config, 0).mean() * 1e6;
    const double rfh = result.cost_stats(config, 1).mean() * 1e6;
    const double balanced = result.cost_stats(config, 2).mean() * 1e6;
    table.begin_row()
        .add(spec.nodes_axis[c])
        .add(idb, 4)
        .add(rfh, 4)
        .add(balanced, 4)
        .add(rfh / idb, 4)
        .add(bench::sweep_seconds(result, config, 0).mean(), 3)
        .add(bench::sweep_seconds(result, config, 1).mean(), 3);
    xs.push_back(spec.nodes_axis[c]);
    idb_series.push_back(idb);
    rfh_series.push_back(rfh);
    base_series.push_back(balanced);
  }
  bench::emit(table, args,
              "Fig. 8: cost vs number of sensor nodes (500x500m, N=100, avg of " +
                  std::to_string(runs) + " fields)");
  {
    viz::ChartOptions options;
    options.title = "Fig. 8: impact of the number of sensor nodes";
    options.x_label = "number of sensor nodes M";
    options.y_label = "total recharging cost [uJ]";
    viz::LineChart chart(options);
    chart.add_series("IDB d=1", xs, idb_series);
    chart.add_series("RFH", xs, rfh_series);
    chart.add_series("Balanced baseline", xs, base_series);
    bench::maybe_save_chart(chart, args, "fig8_num_nodes.svg");
  }
  std::printf("[fig8] %d trials in %.1f s via the experiment engine\n",
              spec.num_trials(), result.wall_seconds);
  return 0;
}
