// Reproduces Fig. 8: impact of the number of sensor nodes in large networks.
//
// Paper setup: 500m x 500m, N = 100 posts, M in {200,...,1000}, average of
// 20 random fields. Finding: IDB(delta=1) leads RFH by ~5%, both fall as M
// grows; RFH is far cheaper to run (see the runtime column and
// ablation_idb_delta).
#include "common.hpp"
#include "core/baseline.hpp"
#include "core/idb.hpp"
#include "core/rfh.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);
  const int posts = 100;
  const double side = 500.0;
  const std::vector<int> node_counts{200, 400, 600, 800, 1000};

  util::Table table({"M", "IDB d=1 [uJ]", "RFH [uJ]", "Balanced [uJ]", "RFH/IDB",
                     "IDB time [s]", "RFH time [s]"});
  std::vector<double> xs;
  std::vector<double> idb_series;
  std::vector<double> rfh_series;
  std::vector<double> base_series;
  util::Timer timer;  // one lap()-segmented stopwatch for every table row
  for (const int m : node_counts) {
    util::RunningStats idb_cost;
    util::RunningStats rfh_cost;
    util::RunningStats base_cost;
    util::RunningStats idb_time;
    util::RunningStats rfh_time;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.seed) + run);
      const core::Instance inst = bench::make_paper_instance(posts, m, side, 3, rng);
      timer.lap();  // drop the field-generation segment
      idb_cost.add(core::solve_idb(inst).cost * 1e6);
      idb_time.add(timer.lap());
      rfh_cost.add(core::solve_rfh(inst).cost * 1e6);
      rfh_time.add(timer.lap());
      base_cost.add(core::solve_balanced_baseline(inst).cost * 1e6);
    }
    table.begin_row()
        .add(m)
        .add(idb_cost.mean(), 4)
        .add(rfh_cost.mean(), 4)
        .add(base_cost.mean(), 4)
        .add(rfh_cost.mean() / idb_cost.mean(), 4)
        .add(idb_time.mean(), 3)
        .add(rfh_time.mean(), 3);
    xs.push_back(m);
    idb_series.push_back(idb_cost.mean());
    rfh_series.push_back(rfh_cost.mean());
    base_series.push_back(base_cost.mean());
    std::printf("[fig8] finished M=%d\n", m);
  }
  bench::emit(table, args,
              "Fig. 8: cost vs number of sensor nodes (500x500m, N=100, avg of " +
                  std::to_string(runs) + " fields)");
  {
    viz::ChartOptions options;
    options.title = "Fig. 8: impact of the number of sensor nodes";
    options.x_label = "number of sensor nodes M";
    options.y_label = "total recharging cost [uJ]";
    viz::LineChart chart(options);
    chart.add_series("IDB d=1", xs, idb_series);
    chart.add_series("RFH", xs, rfh_series);
    chart.add_series("Balanced baseline", xs, base_series);
    bench::maybe_save_chart(chart, args, "fig8_num_nodes.svg");
  }
  return 0;
}
