// Microbenchmarks for the solver hot paths (Google Benchmark).
//
// Measures the layers of one deployment pricing separately -- edge-cost
// lookup, single-sink Dijkstra, whole-deployment pricing, local search --
// and pits each against a faithful inline replica of the pre-cache
// implementation (std::function weight, per-call reachability probing,
// full DAG extraction), so the reported speedups track this library's real
// history rather than a strawman.  docs/performance.md interprets the
// numbers; scripts/perf_baseline.sh refreshes BENCH_hotpaths.json.
//
// Flags (before the --benchmark_* ones): --seed, --scale=default|paper
// (paper doubles the pricing field to 200 posts), --threads=<n> for the
// parallel local-search runs (0 = all cores), --runs=<n> as shorthand for
// --benchmark_repetitions.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cmath>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/cost.hpp"
#include "core/local_search.hpp"
#include "core/pricer.hpp"
#include "core/rfh.hpp"
#include "graph/dijkstra.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "util/arena.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace wrsn;

std::int64_t g_seed = 42;
int g_posts = 100;
int g_threads = 0;  // 0 = all hardware threads

// --- Pre-PR replicas -------------------------------------------------------
// Copies of the historical implementations, kept verbatim so the cached /
// inlined paths are measured against what actually shipped before them.

// Historical edge cost: level lookup + radio table, no dense cache.
double legacy_tx_energy(const core::Instance& inst, int from, int to) {
  return inst.radio().tx_energy(inst.graph().min_level(from, to));
}

// Historical charging-aware weight: std::function with captured state.
graph::WeightFn legacy_recharging_weight(const core::Instance& instance,
                                         const std::vector<int>& deployment) {
  const int bs = instance.graph().base_station();
  std::vector<double> inv_eff(deployment.size());
  for (std::size_t i = 0; i < deployment.size(); ++i) {
    inv_eff[i] = 1.0 / instance.charging().efficiency(deployment[i]);
  }
  return [&instance, inv_eff = std::move(inv_eff), bs](int from, int to) {
    double w = legacy_tx_energy(instance, from, to) * inv_eff[static_cast<std::size_t>(from)];
    if (to != bs) w += instance.rx_energy() * inv_eff[static_cast<std::size_t>(to)];
    return w;
  };
}

// Historical Dijkstra: priority_queue, per-relaxation reachable() probing,
// tight-predecessor extraction over all vertex pairs.
graph::ShortestPathDag legacy_shortest_paths_to_base(const graph::ReachGraph& graph,
                                                     const graph::WeightFn& weight,
                                                     double rel_tie_eps = 1e-9) {
  const int n = graph.num_vertices();
  const int bs = graph.base_station();
  graph::ShortestPathDag dag;
  dag.base_station = bs;
  dag.dist.assign(static_cast<std::size_t>(n), graph::kInfinity);
  dag.parents.assign(static_cast<std::size_t>(n), {});
  dag.dist[static_cast<std::size_t>(bs)] = 0.0;

  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, bs);
  std::vector<char> settled(static_cast<std::size_t>(n), 0);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled[static_cast<std::size_t>(u)]) continue;
    settled[static_cast<std::size_t>(u)] = 1;
    for (int v = 0; v < n; ++v) {
      if (v == u || settled[static_cast<std::size_t>(v)]) continue;
      if (!graph.reachable(v, u)) continue;
      const double w = weight(v, u);
      const double candidate = d + w;
      if (candidate < dag.dist[static_cast<std::size_t>(v)]) {
        dag.dist[static_cast<std::size_t>(v)] = candidate;
        heap.emplace(candidate, v);
      }
    }
  }

  dag.all_posts_reachable = true;
  for (int v = 0; v < n; ++v) {
    if (v == bs) continue;
    if (!std::isfinite(dag.dist[static_cast<std::size_t>(v)])) {
      dag.all_posts_reachable = false;
      continue;
    }
    for (int u = 0; u < n; ++u) {
      if (u == v || !graph.reachable(v, u)) continue;
      if (!std::isfinite(dag.dist[static_cast<std::size_t>(u)])) continue;
      const double w = weight(v, u);
      const double via = dag.dist[static_cast<std::size_t>(u)] + w;
      const double scale =
          std::max({std::fabs(dag.dist[static_cast<std::size_t>(v)]), std::fabs(via), 1e-300});
      if (std::fabs(dag.dist[static_cast<std::size_t>(v)] - via) <= rel_tie_eps * scale) {
        dag.parents[static_cast<std::size_t>(v)].push_back(u);
      }
    }
  }
  return dag;
}

// Historical deployment pricing: fresh weight + full DAG per candidate.
double legacy_optimal_cost_for_deployment(const core::Instance& instance,
                                          const std::vector<int>& deployment) {
  const auto dag = legacy_shortest_paths_to_base(instance.graph(),
                                                 legacy_recharging_weight(instance, deployment));
  if (!dag.all_posts_reachable) return graph::kInfinity;
  double total = 0.0;
  for (int p = 0; p < instance.num_posts(); ++p) {
    total += instance.report_rate(p) * dag.dist[static_cast<std::size_t>(p)];
    total += instance.charging().charger_energy_for(instance.static_energy(p),
                                                    deployment[static_cast<std::size_t>(p)]);
  }
  return total;
}

// --- Fixtures --------------------------------------------------------------

// Density matched to the repo's test fields (~14 posts on a 160 m square).
double side_for(int posts) { return 160.0 * std::sqrt(static_cast<double>(posts) / 14.0); }

const core::Instance& pricing_instance() {
  static const core::Instance inst = [] {
    util::Rng rng(static_cast<std::uint64_t>(g_seed));
    return bench::make_paper_instance(g_posts, 3 * g_posts, side_for(g_posts), 3, rng);
  }();
  return inst;
}

const std::vector<int>& pricing_deployment() {
  static const std::vector<int> deployment(
      static_cast<std::size_t>(pricing_instance().num_posts()), 3);
  return deployment;
}

// Per-size instances for the move-pricing scaling benchmarks (N = 50/100/300
// via ->Arg), cached so repetitions reuse one field.
const core::Instance& move_instance(int posts) {
  static std::map<int, core::Instance> cache;
  auto it = cache.find(posts);
  if (it == cache.end()) {
    util::Rng rng(static_cast<std::uint64_t>(g_seed) + static_cast<std::uint64_t>(posts));
    it = cache
             .emplace(posts,
                      bench::make_paper_instance(posts, 3 * posts, side_for(posts), 3, rng))
             .first;
  }
  return it->second;
}

// Deterministic candidate-move sequence over a deployment of 3 nodes per
// post: every donor always has spares, and the (a, b) pairs sweep varied
// distances so both pricing paths see representative repairs.
struct MoveSequence {
  int n;
  std::size_t i = 0;
  std::pair<int, int> next() {
    const int a = static_cast<int>(i % static_cast<std::size_t>(n));
    const int off = 1 + static_cast<int>(i % static_cast<std::size_t>(n - 1));
    ++i;
    return {a, (a + off) % n};
  }
};

// Smaller field for the end-to-end local-search runs (a single refine prices
// thousands of deployments).
const core::Instance& ls_instance() {
  static const core::Instance inst = [] {
    util::Rng rng(static_cast<std::uint64_t>(g_seed) + 1);
    return bench::make_paper_instance(30, 90, side_for(30), 3, rng);
  }();
  return inst;
}

const core::Solution& ls_start() {
  static const core::Solution start = core::solve_rfh(ls_instance()).solution;
  return start;
}

// --- Sparse-scale fixtures -------------------------------------------------

// Process-wide resident-set high-water mark.  Monotonic across the whole
// run, so only the largest benchmark's row is a tight bound; smaller rows
// report "peak so far".  Linux reports ru_maxrss in kilobytes.
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

// Deterministic square grid, 40 m spacing, three 25 m power levels: every
// post reaches its <= 75 m neighbors (degree ~8 in the interior).  Columns
// are chosen so the post count lands at ~N (cols^2 minus the post that
// coincides with the base-station corner).  Storage is pinned to sparse so
// the N=1000 row measures the same CSR builder as the larger ones (1023
// posts would otherwise sit just under kAutoSparseThreshold and take the
// dense path).
core::Instance make_sparse_instance(int posts) {
  const int cols = static_cast<int>(std::lround(std::sqrt(static_cast<double>(posts) + 1.0)));
  const double side = 40.0 * (cols - 1);
  const geom::Field field = geom::grid_field(side, side, cols, cols);
  const auto radio = energy::RadioModel::uniform_levels(3, 25.0);
  auto graph = graph::ReachGraph::from_field(field, radio, graph::ReachGraph::Storage::kSparse);
  const int n = graph.num_posts();
  return core::Instance::abstract(std::move(graph), radio, energy::ChargingModel::linear(0.01),
                                  2 * n);
}

const core::Instance& sparse_instance(int posts) {
  static std::map<int, core::Instance> cache;
  auto it = cache.find(posts);
  if (it == cache.end()) it = cache.emplace(posts, make_sparse_instance(posts)).first;
  return it->second;
}

// --- Benchmarks ------------------------------------------------------------

void BM_edge_cost_uncached(benchmark::State& state) {
  const auto& inst = pricing_instance();
  const auto& adj = inst.adjacency();
  const int n = inst.graph().num_vertices();
  for (auto _ : state) {
    double sum = 0.0;
    for (int v = 0; v < n; ++v) {
      for (int u : adj.out(v)) sum += legacy_tx_energy(inst, v, u);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_edge_cost_uncached);

void BM_edge_cost_cached(benchmark::State& state) {
  const auto& inst = pricing_instance();
  const auto& adj = inst.adjacency();
  const int n = inst.graph().num_vertices();
  for (auto _ : state) {
    double sum = 0.0;
    for (int v = 0; v < n; ++v) {
      const double* row = inst.tx_cost_row(v);
      for (int u : adj.out(v)) sum += row[u];
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_edge_cost_cached);

void BM_dijkstra_legacy(benchmark::State& state) {
  const auto& inst = pricing_instance();
  const auto weight = legacy_recharging_weight(inst, pricing_deployment());
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy_shortest_paths_to_base(inst.graph(), weight));
  }
}
BENCHMARK(BM_dijkstra_legacy);

void BM_dijkstra_heap(benchmark::State& state) {
  const auto& inst = pricing_instance();
  const core::DenseRechargingWeight weight(inst, pricing_deployment());
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::shortest_paths_to_base(
        inst.graph(), inst.adjacency(), weight, 1e-9, graph::DijkstraVariant::kHeap));
  }
}
BENCHMARK(BM_dijkstra_heap);

void BM_dijkstra_dense(benchmark::State& state) {
  const auto& inst = pricing_instance();
  const core::DenseRechargingWeight weight(inst, pricing_deployment());
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::shortest_paths_to_base(
        inst.graph(), inst.adjacency(), weight, 1e-9, graph::DijkstraVariant::kDense));
  }
}
BENCHMARK(BM_dijkstra_dense);

void BM_price_deployment_legacy(benchmark::State& state) {
  const auto& inst = pricing_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy_optimal_cost_for_deployment(inst, pricing_deployment()));
  }
}
BENCHMARK(BM_price_deployment_legacy);

void BM_price_deployment_cached_heap(benchmark::State& state) {
  const auto& inst = pricing_instance();
  core::CostEvalScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_cost_for_deployment(inst, pricing_deployment(), scratch,
                                                         graph::DijkstraVariant::kHeap));
  }
}
BENCHMARK(BM_price_deployment_cached_heap);

void BM_price_deployment_cached_dense(benchmark::State& state) {
  const auto& inst = pricing_instance();
  core::CostEvalScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_cost_for_deployment(inst, pricing_deployment(), scratch,
                                                         graph::DijkstraVariant::kDense));
  }
}
BENCHMARK(BM_price_deployment_cached_dense);

// Candidate-move pricing, the local-search inner loop: one fresh Dijkstra
// per move (the pre-PR-4 path) ...
void BM_move_price_full(benchmark::State& state) {
  const auto& inst = move_instance(static_cast<int>(state.range(0)));
  const int n = inst.num_posts();
  std::vector<int> deployment(static_cast<std::size_t>(n), 3);
  core::CostEvalScratch scratch;
  MoveSequence moves{n};
  for (auto _ : state) {
    const auto [a, b] = moves.next();
    --deployment[static_cast<std::size_t>(a)];
    ++deployment[static_cast<std::size_t>(b)];
    benchmark::DoNotOptimize(optimal_cost_for_deployment(inst, deployment, scratch));
    ++deployment[static_cast<std::size_t>(a)];
    --deployment[static_cast<std::size_t>(b)];
  }
}
BENCHMARK(BM_move_price_full)->Arg(50)->Arg(100)->Arg(300);

// ... vs dynamic shortest-path repair (core::DeploymentPricer).  The same
// move sequence; `region` reports the average repaired-subtree size drawn
// from the pricer/repair_region_size histogram.
void BM_move_price_incremental(benchmark::State& state) {
  const auto& inst = move_instance(static_cast<int>(state.range(0)));
  const int n = inst.num_posts();
  const core::DeploymentPricer pricer(inst, std::vector<int>(static_cast<std::size_t>(n), 3));
  MoveSequence moves{n};
  auto& regions = obs::Registry::global().histogram("pricer/repair_region_size");
  const std::uint64_t count0 = regions.count();
  const double sum0 = regions.sum();
  for (auto _ : state) {
    const auto [a, b] = moves.next();
    benchmark::DoNotOptimize(pricer.cost_with_moved_node(a, b));
  }
  const std::uint64_t repairs = regions.count() - count0;
  state.counters["region"] =
      repairs > 0 ? (regions.sum() - sum0) / static_cast<double>(repairs) : 0.0;
}
BENCHMARK(BM_move_price_incremental)->Arg(50)->Arg(100)->Arg(300);

// Sparse-core scaling rows, N in {1e3, 1e4, 1e5} posts.  These are
// *trajectory* rows: scripts/bench_check.py --track '^BM_sparse_' reports
// their drift without gating on it (absolute times at 1e5 are machine- and
// cache-bound), while the dense rows above stay the hard regression gate.
// A dense (N+1)^2 matrix at 1e5 posts would be ~80 GB, so these rows only
// exist at all because of the CSR adjacency + grid-indexed builder.
void BM_sparse_instance_build(benchmark::State& state) {
  const int posts = static_cast<int>(state.range(0));
  double adj_bytes = 0.0;
  double built_posts = 0.0;
  for (auto _ : state) {
    const core::Instance inst = make_sparse_instance(posts);
    adj_bytes = static_cast<double>(inst.adjacency().bytes());
    built_posts = static_cast<double>(inst.num_posts());
    benchmark::DoNotOptimize(&inst);
  }
  state.counters["posts"] = built_posts;
  state.counters["adj_mb"] = adj_bytes / (1024.0 * 1024.0);
  state.counters["peak_rss_mb"] = peak_rss_mb();
}
BENCHMARK(BM_sparse_instance_build)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Whole-deployment pricing (one charging-aware Dijkstra + cost fold) on the
// sparse path; kAuto resolves to the bucket queue here because the packed
// adjacency carries weight bounds and the degree is far below dense's
// break-even.
void BM_sparse_price_deployment(benchmark::State& state) {
  const auto& inst = sparse_instance(static_cast<int>(state.range(0)));
  const std::vector<int> deployment(static_cast<std::size_t>(inst.num_posts()), 2);
  util::BumpArena arena;
  core::CostEvalScratch scratch(arena);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimal_cost_for_deployment(inst, deployment, scratch));
  }
  state.counters["peak_rss_mb"] = peak_rss_mb();
}
BENCHMARK(BM_sparse_price_deployment)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void run_local_search(benchmark::State& state, int threads, core::LocalSearchStrategy strategy,
                      core::MovePricing pricing = core::MovePricing::kIncremental) {
  const auto& inst = ls_instance();
  const auto& start = ls_start();
  core::LocalSearchOptions options;
  options.threads = threads;
  options.strategy = strategy;
  options.pricing = pricing;
  std::uint64_t evaluations = 0;
  std::uint64_t wasted = 0;
  double cost = 0.0;
  for (auto _ : state) {
    const auto result = core::refine_solution(inst, start, options);
    evaluations = result.evaluations;
    wasted = result.wasted_evaluations;
    cost = result.cost;
    benchmark::DoNotOptimize(result.cost);
  }
  state.counters["evals"] = static_cast<double>(evaluations);
  state.counters["wasted"] = static_cast<double>(wasted);
  state.counters["cost_uj"] = cost * 1e6;
}

void BM_local_search_serial(benchmark::State& state) {
  run_local_search(state, 1, core::LocalSearchStrategy::kFirstImprovement);
}
BENCHMARK(BM_local_search_serial)->Unit(benchmark::kMillisecond);

void BM_local_search_serial_full_pricing(benchmark::State& state) {
  run_local_search(state, 1, core::LocalSearchStrategy::kFirstImprovement,
                   core::MovePricing::kFull);
}
BENCHMARK(BM_local_search_serial_full_pricing)->Unit(benchmark::kMillisecond);

void BM_local_search_parallel(benchmark::State& state) {
  run_local_search(state, g_threads, core::LocalSearchStrategy::kFirstImprovement);
}
BENCHMARK(BM_local_search_parallel)->Unit(benchmark::kMillisecond);

void BM_local_search_best_improvement(benchmark::State& state) {
  run_local_search(state, g_threads, core::LocalSearchStrategy::kBestImprovement);
}
BENCHMARK(BM_local_search_best_improvement)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Our flags first (unknown --benchmark_* ones pass through untouched)...
  const auto args = bench::BenchArgs::parse(argc, argv);
  g_seed = args.seed;
  g_posts = args.paper_scale() ? 200 : 100;
  g_threads = args.threads;
  // ... then Google Benchmark's, with --runs mapped onto repetitions.
  std::vector<char*> bench_argv(argv, argv + argc);
  std::string repetitions;
  if (args.runs > 0) {
    repetitions = "--benchmark_repetitions=" + std::to_string(args.runs);
    bench_argv.push_back(repetitions.data());
  }
  // The JSON context's "library_build_type" reports how the *benchmark
  // library* was compiled (distro packages often ship it as debug), not this
  // binary.  Publish our own compile mode so scripts/perf_baseline.sh can
  // refuse to record a baseline from an unoptimized build, plus the git SHA
  // so BENCH_hotpaths.json says which revision it measured
  // (scripts/bench_check.py surfaces both when flagging a regression).
  benchmark::AddCustomContext("wrsn_build_type", wrsn::obs::build_info().build_type);
  benchmark::AddCustomContext("wrsn_git_sha", wrsn::obs::build_info().git_sha);
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
