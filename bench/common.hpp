// Shared scaffolding for the figure-reproduction benches.
//
// Every bench accepts:
//   --seed=<u64>   base RNG seed (default 42)
//   --runs=<n>     replications per configuration (paper: 20 large / 5 small
//                  / 40 field-experiment trials; defaults are chosen so the
//                  whole bench suite finishes in minutes on a laptop)
//   --scale=...    "default" or "paper" (paper = the exact sizes of the
//                  paper, which can take much longer, mainly fig7's exact
//                  search)
//   --threads=<n>  worker threads for parallel solver stages (1 = serial,
//                  0 = all hardware threads)
//   --csv          also dump CSV after each table
//   --trace=f.json collect trace spans, write Chrome trace-event JSON
//   --metrics=f.txt dump the global metrics registry (wrsn-metrics v1)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/instance.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "geom/field.hpp"
#include "io/metrics_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "viz/chart.hpp"

namespace wrsn::bench {

struct BenchArgs {
  std::int64_t seed = 42;
  int runs = 0;  // 0 = per-bench default
  int threads = 1;  // parallel solver stages; 0 = all hardware threads
  std::string scale = "default";
  bool csv = false;
  std::string svg_dir;  // when set, benches write figure SVGs here
  std::string trace;    // when set, write Chrome trace JSON here
  std::string metrics;  // when set, write a wrsn-metrics v1 dump here

  bool paper_scale() const { return scale == "paper"; }

  /// Parses common flags; `extra` lets a bench register its own.
  static BenchArgs parse(int argc, char** argv,
                         const std::function<void(util::Flags&)>& extra = {}) {
    BenchArgs args;
    util::Flags flags;
    flags.add_int64("seed", &args.seed, "base RNG seed");
    flags.add_int("runs", &args.runs, "replications per configuration (0 = default)");
    flags.add_int("threads", &args.threads, "solver worker threads (0 = all cores)");
    flags.add_string("scale", &args.scale, "default | paper");
    flags.add_bool("csv", &args.csv, "also print CSV");
    flags.add_string("svg-dir", &args.svg_dir, "write figure SVGs into this directory");
    flags.add_string("trace", &args.trace, "write Chrome trace-event JSON to this file");
    flags.add_string("metrics", &args.metrics, "write a wrsn-metrics v1 dump to this file");
    if (extra) extra(flags);
    if (!flags.parse(argc, argv, /*allow_unknown=*/true)) std::exit(0);
    return args;
  }

  int runs_or(int fallback) const { return runs > 0 ? runs : fallback; }
};

/// Declares the bench's observability scope: enables tracing when --trace
/// was given and writes the trace/metrics artifacts on destruction (i.e.
/// after main's tables printed).  With neither flag set this is inert and
/// the bench's output is byte-identical to an uninstrumented build.
class ObsSession {
 public:
  explicit ObsSession(const BenchArgs& args) : args_(&args) {
    if (!args_->trace.empty()) {
      obs::TraceBuffer::global().clear();
      obs::TraceBuffer::global().set_enabled(true);
    }
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession() {
    if (!args_->trace.empty()) {
      obs::TraceBuffer::global().set_enabled(false);
      obs::save_chrome_trace(args_->trace, obs::TraceBuffer::global().events());
      std::printf("[obs] wrote %s (%zu spans)\n", args_->trace.c_str(),
                  obs::TraceBuffer::global().size());
    }
    if (!args_->metrics.empty()) {
      io::save_metrics(args_->metrics, obs::Registry::global().snapshot());
      std::printf("[obs] wrote %s (%zu metrics)\n", args_->metrics.c_str(),
                  obs::Registry::global().size());
    }
  }

 private:
  const BenchArgs* args_;
};

/// Square-field instance with the paper's radio/charging defaults;
/// resamples the field until it is connected at d_max.
inline core::Instance make_paper_instance(int posts, int nodes, double side, int levels,
                                          util::Rng& rng, double eta = 0.01) {
  geom::FieldConfig cfg;
  cfg.width = side;
  cfg.height = side;
  cfg.num_posts = posts;
  const auto radio = energy::RadioModel::uniform_levels(levels, 25.0);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const geom::Field field = geom::generate_field(cfg, rng);
    if (!geom::is_connected(field, radio.max_range())) continue;
    return core::Instance::geometric(field, radio, energy::ChargingModel::linear(eta), nodes);
  }
  throw std::runtime_error("could not sample a connected field");
}

/// Runs `spec` on the experiment engine with the bench's --threads.  Every
/// figure bench funnels its grid through here: the SweepResult is
/// bit-identical for any thread count, so the tables below never depend on
/// --threads.
inline exp::SweepResult run_sweep(const exp::SweepSpec& spec, const BenchArgs& args) {
  exp::RunnerOptions options;
  options.threads = args.threads;
  exp::ExperimentRunner runner(spec, options);
  return runner.run();
}

/// Mean wall seconds of one (config, solver) cell (nondeterministic, for
/// the runtime columns the legacy benches also printed).
inline util::RunningStats sweep_seconds(const exp::SweepResult& result, int config_index,
                                        int solver_index) {
  util::RunningStats stats;
  for (int run = 0; run < result.runs; ++run) {
    const exp::SolverOutcome& outcome =
        result.trials[static_cast<std::size_t>(config_index * result.runs + run)]
            .outcomes[static_cast<std::size_t>(solver_index)];
    if (outcome.ok) stats.add(outcome.seconds);
  }
  return stats;
}

/// Saves `chart` as <svg_dir>/<filename> when --svg-dir was given.
inline void maybe_save_chart(const viz::LineChart& chart, const BenchArgs& args,
                             const std::string& filename) {
  if (args.svg_dir.empty()) return;
  const std::string path = args.svg_dir + "/" + filename;
  chart.save(path);
  std::cout << "[svg] wrote " << path << "\n";
}

inline void emit(const util::Table& table, const BenchArgs& args, const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
  table.print_ascii(std::cout);
  if (args.csv) {
    std::cout << "-- csv --\n";
    table.print_csv(std::cout);
  }
  std::cout.flush();
}

}  // namespace wrsn::bench
