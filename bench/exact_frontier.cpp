// Exact-search frontier benchmark (Google Benchmark).
//
// Two families, each swept over worker counts {1, 2, 4, 8}:
//
//   BM_exact_nodes_per_sec/T  closed-run work-stealing B&B on a fixed
//                             instance; the `nodes_per_sec` counter is the
//                             leaf-evaluation throughput (evaluations are
//                             schedule-dependent above one thread, so the
//                             rate -- not a pinned node count -- is the
//                             tracked quantity).
//   BM_exact_frontier/T       anytime probes of growing N (M = 2N + 4)
//                             under a per-solve wall-clock budget; the
//                             `frontier_n` counter is the largest N whose
//                             search *completed* inside the budget.  Extra
//                             workers explore disjoint frontier subtrees
//                             concurrently, improving the incumbent -- and
//                             therefore pruning -- earlier, so the frontier
//                             grows with T even before core counts do.
//
// scripts/perf_baseline.sh --bench exact refreshes BENCH_exact.json, and CI
// tracks the `^BM_exact_` rows as a warn-only trajectory
// (scripts/bench_check.py).  Flags (before the --benchmark_* ones): --seed,
// --budget=<s> per-probe anytime budget (default 0.5), --frontier-max-n
// (default 16), --runs=<n> as shorthand for --benchmark_repetitions.
#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/exact.hpp"
#include "obs/build_info.hpp"

namespace {

using namespace wrsn;

std::int64_t g_seed = 42;
double g_budget_s = 0.5;
int g_frontier_min_n = 8;
int g_frontier_max_n = 16;
bool g_warm_start = false;

/// Fixed-N instance for the throughput rows: small enough that a closed run
/// finishes in milliseconds, large enough that the frontier decomposition
/// is non-trivial at 8 workers.
core::Instance rate_instance() {
  util::Rng rng(static_cast<std::uint64_t>(g_seed));
  return bench::make_paper_instance(10, 24, 130.0, 3, rng);
}

/// Frontier-probe instance family: one deterministic geometry per N, shared
/// by every thread count so the probes compare like for like.
core::Instance frontier_instance(int posts) {
  util::Rng rng(static_cast<std::uint64_t>(g_seed) + static_cast<std::uint64_t>(posts));
  const double side = 40.0 * std::sqrt(static_cast<double>(posts));
  return bench::make_paper_instance(posts, 2 * posts + 4, side, 3, rng);
}

void BM_exact_nodes_per_sec(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const core::Instance instance = rate_instance();
  std::uint64_t evaluations = 0;
  std::uint64_t steals = 0;
  double wall_s = 0.0;
  double cost = 0.0;
  for (auto _ : state) {
    core::ExactOptions options;
    options.threads = threads;
    util::Timer timer;
    const core::ExactResult result = core::solve_exact(instance, options);
    wall_s += timer.elapsed_seconds();
    evaluations += result.evaluations;
    steals += result.steals;
    cost = result.cost;
    benchmark::DoNotOptimize(cost);
  }
  // Wall-clock rate, not a benchmark kIsRate counter: the latter divides by
  // the *calling thread's* CPU time, which undercounts the worker pool.
  state.counters["nodes_per_sec"] =
      wall_s > 0.0 ? static_cast<double>(evaluations) / wall_s : 0.0;
  state.counters["steals"] = static_cast<double>(steals) / state.iterations();
  state.counters["threads"] = threads;
}
BENCHMARK(BM_exact_nodes_per_sec)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_exact_frontier(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  int frontier = 0;
  std::uint64_t evaluations = 0;
  double wall_s = 0.0;
  for (auto _ : state) {
    frontier = 0;
    for (int posts = g_frontier_min_n; posts <= g_frontier_max_n; ++posts) {
      const core::Instance instance = frontier_instance(posts);
      core::ExactOptions options;
      options.threads = threads;
      options.time_budget_s = g_budget_s;
      options.warm_start = g_warm_start;
      util::Timer timer;
      const core::ExactResult result = core::solve_exact(instance, options);
      wall_s += timer.elapsed_seconds();
      evaluations += result.evaluations;
      if (!result.complete) break;
      frontier = posts;
    }
  }
  state.counters["frontier_n"] = frontier;
  state.counters["budget_s"] = g_budget_s;
  // Wall-clock rate over the solve time only (instance sampling excluded);
  // see BM_exact_nodes_per_sec for why kIsRate is wrong here.
  state.counters["nodes_per_sec"] =
      wall_s > 0.0 ? static_cast<double>(evaluations) / wall_s : 0.0;
  state.counters["threads"] = threads;
}
BENCHMARK(BM_exact_frontier)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, [](util::Flags& flags) {
    flags.add_double("budget", &g_budget_s,
                     "anytime wall-clock budget per frontier probe [s]");
    flags.add_int("frontier-min-n", &g_frontier_min_n,
                  "smallest post count the frontier sweep will probe");
    flags.add_int("frontier-max-n", &g_frontier_max_n,
                  "largest post count the frontier sweep will probe");
    flags.add_bool("warm-start", &g_warm_start,
                   "seed frontier probes with the IDB incumbent (default off: the "
                   "probes measure the search, not the heuristic seed)");
  });
  g_seed = args.seed;
  if (args.paper_scale()) g_budget_s = 60.0;  // the paper-style 60 s frontier
  std::vector<char*> bench_argv(argv, argv + argc);
  std::string repetitions;
  if (args.runs > 0) {
    repetitions = "--benchmark_repetitions=" + std::to_string(args.runs);
    bench_argv.push_back(repetitions.data());
  }
  benchmark::AddCustomContext("wrsn_build_type", wrsn::obs::build_info().build_type);
  benchmark::AddCustomContext("wrsn_git_sha", wrsn::obs::build_info().git_sha);
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
