// Ablation A1 (DESIGN.md): what each RFH design choice buys.
//
// Toggles Phase II workload concentration, Phase III sibling merging, the
// Phase IV workload definition, and the iterative refinement, on the Fig. 8
// midpoint configuration (N=100, M=600, 500x500m).
#include "common.hpp"
#include "core/rfh.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);

  struct Variant {
    const char* name;
    core::RfhOptions options;
  };
  std::vector<Variant> variants;
  {
    core::RfhOptions base;
    variants.push_back({"full RFH (7 iters)", base});
    core::RfhOptions v = base;
    v.iterations = 1;
    variants.push_back({"basic RFH (1 iter)", v});
    v = base;
    v.concentrate_workload = false;
    variants.push_back({"no Phase II concentration", v});
    v = base;
    v.merge_siblings = false;
    variants.push_back({"no Phase III sibling merge", v});
    v = base;
    v.concentrate_workload = false;
    v.merge_siblings = false;
    variants.push_back({"plain SPT + Lagrange deploy", v});
    v = base;
    v.workload_kind = core::WorkloadKind::Bits;
    variants.push_back({"Phase IV weights = bits (paper literal)", v});
    v = base;
    v.rx_in_weight = true;
    variants.push_back({"Phase I weight includes e_r", v});
  }

  std::vector<util::RunningStats> costs(variants.size());
  for (int run = 0; run < runs; ++run) {
    util::Rng rng(static_cast<std::uint64_t>(args.seed) + run);
    const core::Instance inst = bench::make_paper_instance(100, 600, 500.0, 3, rng);
    for (std::size_t v = 0; v < variants.size(); ++v) {
      costs[v].add(core::solve_rfh(inst, variants[v].options).cost * 1e6);
    }
  }

  util::Table table({"variant", "cost [uJ]", "vs full RFH [%]"});
  const double reference = costs[0].mean();
  for (std::size_t v = 0; v < variants.size(); ++v) {
    table.begin_row()
        .add(variants[v].name)
        .add(costs[v].mean(), 4)
        .add((costs[v].mean() / reference - 1.0) * 100.0, 2);
  }
  bench::emit(table, args,
              "Ablation: RFH phases (500x500m, N=100, M=600, avg of " + std::to_string(runs) +
                  " fields)");
  return 0;
}
