// Ablation A1 (DESIGN.md): what each RFH design choice buys.
//
// Toggles Phase II workload concentration, Phase III sibling merging, the
// Phase IV workload definition, the Phase IV integerization rule, and the
// iterative refinement, on the Fig. 8 midpoint configuration (N=100, M=600,
// 500x500m).  Each variant is a solver-registry spec string priced by
// exp::ExperimentRunner on the same paired fields.
#include "common.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);

  const std::vector<std::pair<const char*, const char*>> variants{
      {"full RFH (7 iters)", "rfh"},
      {"basic RFH (1 iter)", "rfh:iterations=1"},
      {"no Phase II concentration", "rfh:concentrate=0"},
      {"no Phase III sibling merge", "rfh:merge=0"},
      {"plain SPT + Lagrange deploy", "rfh:concentrate=0,merge=0"},
      {"Phase IV weights = bits (paper literal)", "rfh:workload=bits"},
      {"Phase I weight includes e_r", "rfh:rx-weight=1"},
      // Allocation-rule ablation: exact greedy integerization of the Phase
      // IV subproblem vs the paper's smallest-share rounding (the source of
      // the Fig. 7a gap, EXPERIMENTS.md note 1).
      {"Phase IV greedy-exact allocation", "rfh:alloc=greedy"},
      {"basic RFH + greedy allocation", "rfh:iterations=1,alloc=greedy"},
  };

  exp::SweepSpec spec;
  spec.name = "ablation_rfh_phases";
  spec.side = 500.0;
  spec.posts_axis = {100};
  spec.nodes_axis = {600};
  spec.levels_axis = {3};
  spec.eta_axis = {0.01};
  spec.runs = runs;
  spec.base_seed = static_cast<std::uint64_t>(args.seed);
  spec.solvers.clear();
  for (const auto& [label, solver] : variants) spec.solvers.push_back(solver);
  const exp::SweepResult result = bench::run_sweep(spec, args);

  util::Table table({"variant", "cost [uJ]", "vs full RFH [%]"});
  const double reference = result.cost_stats(0, 0).mean() * 1e6;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const double cost = result.cost_stats(0, static_cast<int>(v)).mean() * 1e6;
    table.begin_row()
        .add(variants[v].first)
        .add(cost, 4)
        .add((cost / reference - 1.0) * 100.0, 2);
  }
  bench::emit(table, args,
              "Ablation: RFH phases (500x500m, N=100, M=600, avg of " + std::to_string(runs) +
                  " fields)");
  return 0;
}
