// Reproduces Fig. 7: heuristics vs. the optimal solution in small networks.
//
// Paper setup: 200m x 200m field, average of 5 random post distributions.
//   (a) N = 10 posts, M in {20, 24, 28, 32, 36};
//   (b) M = 36 nodes, N in {8, 9, 10, 11, 12}.
// Findings reproduced: IDB(delta=1) matches the optimum at (almost) every
// point; RFH lands within a few percent.
//
// The exact search is exponential (C(M-1, N-1) compositions); the default
// scale trims part (b) to N <= 10 so the bench finishes quickly.  Run with
// --scale=paper for the full Fig. 7 grid.
#include "common.hpp"
#include "core/baseline.hpp"
#include "core/exact.hpp"
#include "core/idb.hpp"
#include "core/rfh.hpp"

using namespace wrsn;

namespace {

struct Row {
  util::RunningStats optimal;
  util::RunningStats idb;
  util::RunningStats rfh;
  util::RunningStats baseline;
  util::RunningStats exact_seconds;
};

Row run_config(int posts, int nodes, int runs, std::uint64_t seed) {
  Row row;
  for (int run = 0; run < runs; ++run) {
    util::Rng rng(seed + static_cast<std::uint64_t>(run) * 1000);
    const core::Instance inst = bench::make_paper_instance(posts, nodes, 200.0, 3, rng);
    util::Timer timer;
    const auto exact = core::solve_exact(inst);
    row.exact_seconds.add(timer.elapsed_seconds());
    row.optimal.add(exact.cost * 1e6);
    row.idb.add(core::solve_idb(inst).cost * 1e6);
    row.rfh.add(core::solve_rfh(inst).cost * 1e6);
    row.baseline.add(core::solve_balanced_baseline(inst).cost * 1e6);
  }
  return row;
}

void emit_chart(const std::vector<std::pair<std::string, Row>>& rows,
                const std::vector<int>& xs_int, const bench::BenchArgs& args,
                const std::string& x_label, const std::string& title,
                const std::string& filename) {
  std::vector<double> xs(xs_int.begin(), xs_int.end());
  std::vector<double> optimal;
  std::vector<double> idb;
  std::vector<double> rfh;
  for (const auto& [label, row] : rows) {
    optimal.push_back(row.optimal.mean());
    idb.push_back(row.idb.mean());
    rfh.push_back(row.rfh.mean());
  }
  viz::ChartOptions options;
  options.title = title;
  options.x_label = x_label;
  options.y_label = "total recharging cost [uJ]";
  viz::LineChart chart(options);
  chart.add_series("Optimal", xs, optimal);
  chart.add_series("IDB d=1", xs, idb);
  chart.add_series("RFH", xs, rfh);
  bench::maybe_save_chart(chart, args, filename);
}

void emit_rows(const std::vector<std::pair<std::string, Row>>& rows,
               const bench::BenchArgs& args, const std::string& title) {
  util::Table table({"config", "Optimal [uJ]", "IDB d=1 [uJ]", "RFH [uJ]", "Balanced [uJ]",
                     "IDB/Opt", "RFH/Opt", "exact search [s]"});
  for (const auto& [label, row] : rows) {
    table.begin_row()
        .add(label)
        .add(row.optimal.mean(), 4)
        .add(row.idb.mean(), 4)
        .add(row.rfh.mean(), 4)
        .add(row.baseline.mean(), 4)
        .add(row.idb.mean() / row.optimal.mean(), 4)
        .add(row.rfh.mean() / row.optimal.mean(), 4)
        .add(row.exact_seconds.mean(), 3);
  }
  bench::emit(table, args, title);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(5);  // the paper's 5

  // Part (a): N = 10 fixed, M swept.
  {
    std::vector<std::pair<std::string, Row>> rows;
    const std::vector<int> nodes = args.paper_scale() ? std::vector<int>{20, 24, 28, 32, 36}
                                                      : std::vector<int>{20, 24, 28};
    for (const int m : nodes) {
      rows.emplace_back("N=10, M=" + std::to_string(m),
                        run_config(10, m, runs, static_cast<std::uint64_t>(args.seed)));
      std::printf("[fig7a] finished M=%d\n", m);
    }
    emit_rows(rows, args, "Fig. 7(a): cost vs number of sensor nodes (200x200m, N=10, avg of " +
                              std::to_string(runs) + " fields)");
    emit_chart(rows, nodes, args, "number of sensor nodes M",
               "Fig. 7(a): heuristics vs optimal", "fig7a_optimal_comparison.svg");
  }

  // Part (b): M = 36 fixed, N swept.
  {
    std::vector<std::pair<std::string, Row>> rows;
    const std::vector<int> posts = args.paper_scale() ? std::vector<int>{8, 9, 10, 11, 12}
                                                      : std::vector<int>{8, 9, 10};
    for (const int n : posts) {
      rows.emplace_back("N=" + std::to_string(n) + ", M=36",
                        run_config(n, 36, runs, static_cast<std::uint64_t>(args.seed) + 777));
      std::printf("[fig7b] finished N=%d\n", n);
    }
    emit_rows(rows, args, "Fig. 7(b): cost vs number of posts (200x200m, M=36, avg of " +
                              std::to_string(runs) + " fields)");
    emit_chart(rows, posts, args, "number of posts N",
               "Fig. 7(b): heuristics vs optimal", "fig7b_optimal_comparison.svg");
  }
  return 0;
}
