// Reproduces Fig. 7: heuristics vs. the optimal solution in small networks.
//
// Paper setup: 200m x 200m field, average of 5 random post distributions.
//   (a) N = 10 posts, M in {20, 24, 28, 32, 36};
//   (b) M = 36 nodes, N in {8, 9, 10, 11, 12}.
// Findings reproduced: IDB(delta=1) matches the optimum at (almost) every
// point; RFH lands within a few percent.
//
// The exact search is exponential (C(M-1, N-1) compositions); the default
// scale trims part (b) to N <= 10 so the bench finishes quickly.  Run with
// --scale=paper for the full Fig. 7 grid.
//
// Both parts run on exp::ExperimentRunner; the paired seed stride of 1000
// (and part (b)'s +777 base offset) reproduce the legacy seeding exactly.
#include "common.hpp"

using namespace wrsn;

namespace {

/// Formats one part's sweep: Optimal/IDB/RFH/Balanced columns plus ratios.
void emit_part(const exp::SweepSpec& spec, const exp::SweepResult& result,
               const std::vector<int>& xs_int, const std::string& config_prefix,
               bool prefix_is_posts, const bench::BenchArgs& args, const std::string& title,
               const std::string& x_label, const std::string& chart_title,
               const std::string& filename) {
  util::Table table({"config", "Optimal [uJ]", "IDB d=1 [uJ]", "RFH [uJ]", "Balanced [uJ]",
                     "IDB/Opt", "RFH/Opt", "exact search [s]"});
  std::vector<double> xs(xs_int.begin(), xs_int.end());
  std::vector<double> optimal_series;
  std::vector<double> idb_series;
  std::vector<double> rfh_series;
  for (std::size_t c = 0; c < xs_int.size(); ++c) {
    const int config = static_cast<int>(c);
    const double optimal = result.cost_stats(config, 0).mean() * 1e6;
    const double idb = result.cost_stats(config, 1).mean() * 1e6;
    const double rfh = result.cost_stats(config, 2).mean() * 1e6;
    const double balanced = result.cost_stats(config, 3).mean() * 1e6;
    const std::string label = prefix_is_posts
                                  ? "N=" + std::to_string(xs_int[c]) + ", " + config_prefix
                                  : config_prefix + ", M=" + std::to_string(xs_int[c]);
    table.begin_row()
        .add(label)
        .add(optimal, 4)
        .add(idb, 4)
        .add(rfh, 4)
        .add(balanced, 4)
        .add(idb / optimal, 4)
        .add(rfh / optimal, 4)
        .add(bench::sweep_seconds(result, config, 0).mean(), 3);
    optimal_series.push_back(optimal);
    idb_series.push_back(idb);
    rfh_series.push_back(rfh);
  }
  bench::emit(table, args, title);

  viz::ChartOptions options;
  options.title = chart_title;
  options.x_label = x_label;
  options.y_label = "total recharging cost [uJ]";
  viz::LineChart chart(options);
  chart.add_series("Optimal", xs, optimal_series);
  chart.add_series("IDB d=1", xs, idb_series);
  chart.add_series("RFH", xs, rfh_series);
  bench::maybe_save_chart(chart, args, filename);
  std::printf("[%s] %d trials in %.1f s via the experiment engine\n", spec.name.c_str(),
              spec.num_trials(), result.wall_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(5);  // the paper's 5

  exp::SweepSpec base;
  base.side = 200.0;
  base.levels_axis = {3};
  base.eta_axis = {0.01};
  base.runs = runs;
  base.seed_stride = 1000;  // the legacy Rng(seed + run * 1000)
  base.solvers = {"exact", "idb", "rfh", "balanced"};

  // Part (a): N = 10 fixed, M swept.
  {
    exp::SweepSpec spec = base;
    spec.name = "fig7a";
    spec.posts_axis = {10};
    spec.nodes_axis = args.paper_scale() ? std::vector<int>{20, 24, 28, 32, 36}
                                         : std::vector<int>{20, 24, 28};
    spec.base_seed = static_cast<std::uint64_t>(args.seed);
    const exp::SweepResult result = bench::run_sweep(spec, args);
    emit_part(spec, result, spec.nodes_axis, "N=10", /*prefix_is_posts=*/false, args,
              "Fig. 7(a): cost vs number of sensor nodes (200x200m, N=10, avg of " +
                  std::to_string(runs) + " fields)",
              "number of sensor nodes M", "Fig. 7(a): heuristics vs optimal",
              "fig7a_optimal_comparison.svg");
  }

  // Part (b): M = 36 fixed, N swept.
  {
    exp::SweepSpec spec = base;
    spec.name = "fig7b";
    spec.posts_axis = args.paper_scale() ? std::vector<int>{8, 9, 10, 11, 12}
                                         : std::vector<int>{8, 9, 10};
    spec.nodes_axis = {36};
    spec.base_seed = static_cast<std::uint64_t>(args.seed) + 777;
    const exp::SweepResult result = bench::run_sweep(spec, args);
    emit_part(spec, result, spec.posts_axis, "M=36", /*prefix_is_posts=*/true, args,
              "Fig. 7(b): cost vs number of posts (200x200m, M=36, avg of " +
                  std::to_string(runs) + " fields)",
              "number of posts N", "Fig. 7(b): heuristics vs optimal",
              "fig7b_optimal_comparison.svg");
  }
  return 0;
}
