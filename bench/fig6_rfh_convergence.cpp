// Reproduces Fig. 6: the benefit of running RFH iteratively.
//
// Paper setup: 500m x 500m field, N = 100 posts, M in {400, 600, 800, 1000}
// nodes, average of 20 random post distributions. The total recharging cost
// falls with iterations and converges within ~7 rounds (sometimes
// oscillating in a tiny band due to Phase IV rounding).
//
// The convergence series is consumed from the solver's obs::Sink iteration
// events (cost-so-far per iteration) rather than re-derived from the result
// struct; --trace/--metrics expose the run's spans and counters.
#include "common.hpp"
#include "core/rfh.hpp"
#include "obs/sink.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 10);
  const int iterations = 10;
  const std::vector<int> node_counts{400, 600, 800, 1000};
  const int posts = 100;
  const double side = 500.0;

  util::Table table([&] {
    std::vector<std::string> headers{"iteration"};
    for (int m : node_counts) headers.push_back("M=" + std::to_string(m) + " cost [uJ]");
    return headers;
  }());

  // history[m_index][iteration] accumulated over runs.
  std::vector<std::vector<util::RunningStats>> history(
      node_counts.size(), std::vector<util::RunningStats>(static_cast<std::size_t>(iterations)));
  std::vector<util::RunningStats> converged_at(node_counts.size());

  obs::MetricsSink metrics_sink(obs::Registry::global());
  util::Timer timer;
  for (int run = 0; run < runs; ++run) {
    util::Rng rng(static_cast<std::uint64_t>(args.seed) + run);
    // One field per run, shared by all node budgets (paper-style pairing).
    const core::Instance probe = bench::make_paper_instance(posts, node_counts[0], side, 3, rng);
    for (std::size_t mi = 0; mi < node_counts.size(); ++mi) {
      const core::Instance inst = core::Instance::geometric(
          *probe.field(), probe.radio(), probe.charging(), node_counts[mi]);
      obs::RecordingSink recorder;
      obs::MultiSink sinks({&recorder, &metrics_sink});
      core::RfhOptions options;
      options.iterations = iterations;
      options.sink = &sinks;
      const core::RfhResult result = core::solve_rfh(inst, options);
      for (const obs::RfhIterationEvent& event : recorder.rfh_iterations) {
        history[mi][static_cast<std::size_t>(event.iteration)].add(event.cost * 1e6);
      }
      // First iteration whose cost is within 0.01% of the best.
      int convergence = iterations;
      for (const obs::RfhIterationEvent& event : recorder.rfh_iterations) {
        if (event.cost <= result.cost * 1.0001) {
          convergence = event.iteration + 1;
          break;
        }
      }
      converged_at[mi].add(convergence);
    }
  }

  for (int it = 0; it < iterations; ++it) {
    table.begin_row().add(it + 1);
    for (std::size_t mi = 0; mi < node_counts.size(); ++mi) {
      table.add(history[mi][static_cast<std::size_t>(it)].mean(), 4);
    }
  }
  bench::emit(table, args,
              "Fig. 6: iterative RFH cost vs iteration (500x500m, N=100, avg of " +
                  std::to_string(runs) + " fields)");

  {
    viz::ChartOptions options;
    options.title = "Fig. 6: benefit of running RFH iteratively";
    options.x_label = "iteration";
    options.y_label = "total recharging cost [uJ]";
    options.y_from_zero = false;
    viz::LineChart chart(options);
    for (std::size_t mi = 0; mi < node_counts.size(); ++mi) {
      std::vector<double> xs;
      std::vector<double> ys;
      for (int it = 0; it < iterations; ++it) {
        xs.push_back(it + 1);
        ys.push_back(history[mi][static_cast<std::size_t>(it)].mean());
      }
      chart.add_series("M=" + std::to_string(node_counts[mi]), xs, ys);
    }
    bench::maybe_save_chart(chart, args, "fig6_rfh_convergence.svg");
  }

  util::Table conv({"M", "mean iterations to converge", "max"});
  for (std::size_t mi = 0; mi < node_counts.size(); ++mi) {
    conv.begin_row().add(node_counts[mi]).add(converged_at[mi].mean(), 2).add(
        converged_at[mi].max(), 0);
  }
  bench::emit(conv, args, "Fig. 6 companion: convergence round (paper: <= 7)");

  std::printf("\n[fig6] total wall time: %.1f s\n", timer.elapsed_seconds());
  return 0;
}
