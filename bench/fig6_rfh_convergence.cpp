// Reproduces Fig. 6: the benefit of running RFH iteratively.
//
// Paper setup: 500m x 500m field, N = 100 posts, M in {400, 600, 800, 1000}
// nodes, average of 20 random post distributions. The total recharging cost
// falls with iterations and converges within ~7 rounds (sometimes
// oscillating in a tiny band due to Phase IV rounding).
//
// Runs on exp::ExperimentRunner.  The per-iteration series and convergence
// round come from the rfh solver's diagnostics (rfh/iter_cost_<i>,
// rfh/convergence_round); paired seeding shares one field per run across
// all node budgets exactly like the legacy bench's probe instance.
#include "common.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 10);
  const int iterations = 10;

  util::Timer timer;
  exp::SweepSpec spec;
  spec.name = "fig6";
  spec.side = 500.0;
  spec.posts_axis = {100};
  spec.nodes_axis = {400, 600, 800, 1000};
  spec.levels_axis = {3};
  spec.eta_axis = {0.01};
  spec.runs = runs;
  spec.base_seed = static_cast<std::uint64_t>(args.seed);
  spec.solvers = {"rfh:iterations=" + std::to_string(iterations)};
  const exp::SweepResult result = bench::run_sweep(spec, args);

  util::Table table([&] {
    std::vector<std::string> headers{"iteration"};
    for (int m : spec.nodes_axis) headers.push_back("M=" + std::to_string(m) + " cost [uJ]");
    return headers;
  }());
  for (int it = 0; it < iterations; ++it) {
    table.begin_row().add(it + 1);
    for (std::size_t mi = 0; mi < spec.nodes_axis.size(); ++mi) {
      const util::RunningStats cost = result.diag_stats(
          static_cast<int>(mi), 0, "rfh/iter_cost_" + std::to_string(it));
      table.add(cost.mean() * 1e6, 4);
    }
  }
  bench::emit(table, args,
              "Fig. 6: iterative RFH cost vs iteration (500x500m, N=100, avg of " +
                  std::to_string(runs) + " fields)");

  {
    viz::ChartOptions options;
    options.title = "Fig. 6: benefit of running RFH iteratively";
    options.x_label = "iteration";
    options.y_label = "total recharging cost [uJ]";
    options.y_from_zero = false;
    viz::LineChart chart(options);
    for (std::size_t mi = 0; mi < spec.nodes_axis.size(); ++mi) {
      std::vector<double> xs;
      std::vector<double> ys;
      for (int it = 0; it < iterations; ++it) {
        xs.push_back(it + 1);
        ys.push_back(result.diag_stats(static_cast<int>(mi), 0,
                                       "rfh/iter_cost_" + std::to_string(it))
                         .mean() *
                     1e6);
      }
      chart.add_series("M=" + std::to_string(spec.nodes_axis[mi]), xs, ys);
    }
    bench::maybe_save_chart(chart, args, "fig6_rfh_convergence.svg");
  }

  util::Table conv({"M", "mean iterations to converge", "max"});
  for (std::size_t mi = 0; mi < spec.nodes_axis.size(); ++mi) {
    const util::RunningStats rounds =
        result.diag_stats(static_cast<int>(mi), 0, "rfh/convergence_round");
    conv.begin_row().add(spec.nodes_axis[mi]).add(rounds.mean(), 2).add(rounds.max(), 0);
  }
  bench::emit(conv, args, "Fig. 6 companion: convergence round (paper: <= 7)");

  std::printf("\n[fig6] total wall time: %.1f s\n", timer.elapsed_seconds());
  return 0;
}
