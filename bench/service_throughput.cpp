// wrsn_serve throughput benchmark (Google Benchmark): the numbers behind
// BENCH_service.json.  Each row boots a real in-process Server on a unix
// socket and drives it with closed-loop client threads, so the measured
// path is the full daemon stack -- framing, dispatch queue, session cache,
// solver -- not a function call.
//
// Families, each swept over client counts {1, 4, 16}:
//
//   BM_svc_plan_warm/C       `plan` against one cached scenario: after the
//                            first request every call is a session-cache
//                            hit (parse + solve only, no field sampling or
//                            instance build).
//   BM_svc_plan_cold/C       `plan` with a fresh seed per request: every
//                            call is a miss and pays the full build.  The
//                            warm/cold rps gap is the cache's measured win.
//   BM_svc_evaluate_warm/C   single-post-delta `evaluate` on a warm
//                            session: the incremental-pricing fast path.
//
// Counters per row: `rps` (completed requests / wall s), `p50_ms` /
// `p99_ms` (client-observed latency), `clients`.  scripts/perf_baseline.sh
// --bench service refreshes BENCH_service.json and CI tracks `^BM_svc_`
// rows warn-only (scripts/bench_check.py).  Flags (before --benchmark_*):
// --seed, --posts, --nodes, --requests=<per client per iteration>.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "obs/build_info.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/timer.hpp"

namespace {

using namespace wrsn;

std::int64_t g_seed = 42;
int g_posts = 10;
int g_nodes = 24;
int g_requests = 8;  // per client per iteration

std::string bench_socket_path() {
  return "/tmp/wrsn_svc_bench_" + std::to_string(::getpid()) + ".sock";
}

svc::ServerOptions bench_server_options() {
  svc::ServerOptions options;
  options.unix_path = bench_socket_path();
  options.workers = 0;  // all cores: the bench measures the service, not a pin
  options.cache_capacity = 64;
  options.queue_capacity = 1024;
  return options;
}

io::Json scenario_json(std::int64_t seed) {
  io::Json scenario = io::Json::object();
  scenario.set("posts", io::Json(g_posts));
  scenario.set("nodes", io::Json(g_nodes));
  scenario.set("side", io::Json(130.0));
  scenario.set("seed", io::Json(seed));
  return scenario;
}

io::Json plan_params(std::int64_t seed) {
  io::Json params = io::Json::object();
  params.set("scenario", scenario_json(seed));
  params.set("solver", io::Json("rfh+ls"));
  params.set("report", io::Json(false));
  return params;
}

io::Json evaluate_params(std::int64_t seed, int bumped_post) {
  io::Json params = io::Json::object();
  params.set("scenario", scenario_json(seed));
  io::Json deployment = io::Json::array();
  const int spare = g_nodes - g_posts;
  for (int p = 0; p < g_posts; ++p) {
    int m = 1;
    if (p == 0) m += spare - 1;
    if (p == bumped_post) m += 1;
    deployment.push_back(io::Json(m));
  }
  io::Json deployments = io::Json::array();
  deployments.push_back(std::move(deployment));
  params.set("deployments", std::move(deployments));
  return params;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - static_cast<double>(lo));
}

void run_family(benchmark::State& state, const std::string& method,
                const std::function<io::Json(int, int)>& make_params, bool prewarm) {
  const int clients = static_cast<int>(state.range(0));
  svc::Server server(bench_server_options());
  server.start();
  if (prewarm) {
    svc::Client warmup = svc::Client::connect_unix(bench_socket_path());
    warmup.call(method, make_params(0, 0));
  }

  std::vector<double> latencies;
  std::uint64_t completed = 0;
  double wall_s = 0.0;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_client(static_cast<std::size_t>(clients));
    std::vector<std::thread> threads;
    util::Timer timer;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([c, &method, &make_params, &per_client] {
        svc::Client client = svc::Client::connect_unix(bench_socket_path());
        for (int i = 0; i < g_requests; ++i) {
          util::Timer request_timer;
          client.call(method, make_params(c, i));
          per_client[static_cast<std::size_t>(c)].push_back(
              request_timer.elapsed_seconds() * 1e3);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    wall_s += timer.elapsed_seconds();
    for (const auto& list : per_client) {
      completed += list.size();
      latencies.insert(latencies.end(), list.begin(), list.end());
    }
  }
  server.stop();

  std::sort(latencies.begin(), latencies.end());
  state.counters["rps"] = wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
  state.counters["p50_ms"] = percentile(latencies, 0.50);
  state.counters["p99_ms"] = percentile(latencies, 0.99);
  state.counters["clients"] = clients;
}

void BM_svc_plan_warm(benchmark::State& state) {
  // One shared scenario: every request after the prewarm call is a hit.
  run_family(state, "plan", [](int, int) { return plan_params(g_seed); },
             /*prewarm=*/true);
}
BENCHMARK(BM_svc_plan_warm)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_svc_plan_cold(benchmark::State& state) {
  // A fresh seed per request: every call misses and pays the full build.
  static std::atomic<std::int64_t> next_seed{1};
  run_family(state, "plan",
             [](int, int) { return plan_params(10000 + next_seed.fetch_add(1)); },
             /*prewarm=*/false);
}
BENCHMARK(BM_svc_plan_cold)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_svc_evaluate_warm(benchmark::State& state) {
  // Single-post deltas against one cached scenario: the incremental path.
  run_family(state, "evaluate",
             [](int, int sequence) {
               return evaluate_params(g_seed, 1 + sequence % (g_posts - 1));
             },
             /*prewarm=*/true);
}
BENCHMARK(BM_svc_evaluate_warm)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, [](util::Flags& flags) {
    flags.add_int("posts", &g_posts, "scenario posts");
    flags.add_int("nodes", &g_nodes, "scenario nodes");
    flags.add_int("requests", &g_requests, "requests per client per iteration");
  });
  g_seed = args.seed;
  std::vector<char*> bench_argv(argv, argv + argc);
  std::string repetitions;
  if (args.runs > 0) {
    repetitions = "--benchmark_repetitions=" + std::to_string(args.runs);
    bench_argv.push_back(repetitions.data());
  }
  benchmark::AddCustomContext("wrsn_build_type", wrsn::obs::build_info().build_type);
  benchmark::AddCustomContext("wrsn_git_sha", wrsn::obs::build_info().git_sha);
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
