// Ablation A4: local-search refinement (library extension beyond the paper).
//
// Question: how much of the RFH-vs-IDB gap does a cheap move-neighborhood
// hill climb recover, and at what runtime? Compares RFH, RFH+LS, IDB and
// IDB+LS on mid-size fields, all as solver-registry specs through
// exp::ExperimentRunner.
#include "common.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);

  exp::SweepSpec spec;
  spec.name = "ablation_local_search";
  spec.side = 350.0;
  spec.posts_axis = {50};
  spec.nodes_axis = {200};
  spec.levels_axis = {3};
  spec.eta_axis = {0.01};
  spec.runs = runs;
  spec.base_seed = static_cast<std::uint64_t>(args.seed);
  // The last row re-runs RFH+LS with the historical full per-candidate
  // Dijkstra pricing, so the end-to-end win of PR 4's dynamic shortest-path
  // repair shows up in the timing column (costs agree to FP tolerance).
  spec.solvers = {"rfh", "rfh+ls", "idb", "idb+ls", "rfh+ls:ls-pricing=full"};
  const exp::SweepResult result = bench::run_sweep(spec, args);

  util::Table table({"pipeline", "cost [uJ]", "vs IDB [%]", "time [s]"});
  const double reference = result.cost_stats(0, 2).mean() * 1e6;
  const std::vector<const char*> labels{"RFH", "RFH + local search", "IDB d=1",
                                        "IDB + local search", "RFH + LS (full pricing)"};
  for (std::size_t s = 0; s < labels.size(); ++s) {
    const double cost = result.cost_stats(0, static_cast<int>(s)).mean() * 1e6;
    table.begin_row()
        .add(labels[s])
        .add(cost, 4)
        .add((cost / reference - 1.0) * 100.0, 2)
        .add(bench::sweep_seconds(result, 0, static_cast<int>(s)).mean(), 3);
  }
  bench::emit(table, args,
              "Ablation: local-search refinement (350x350m, N=50, M=200, avg of " +
                  std::to_string(runs) + " fields; mean LS moves on RFH = " +
                  util::format_double(result.diag_stats(0, 1, "ls/moves").mean(), 1) +
                  ", on IDB = " +
                  util::format_double(result.diag_stats(0, 3, "ls/moves").mean(), 1) + ")");
  return 0;
}
