// Ablation A4: local-search refinement (library extension beyond the paper).
//
// Question: how much of the RFH-vs-IDB gap does a cheap move-neighborhood
// hill climb recover, and at what runtime? Compares RFH, RFH+LS, IDB and
// IDB+LS on mid-size fields.
#include "common.hpp"
#include "core/idb.hpp"
#include "core/local_search.hpp"
#include "core/rfh.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);
  const int posts = 50;
  const int nodes = 200;
  const double side = 350.0;

  util::RunningStats rfh_cost;
  util::RunningStats rfh_ls_cost;
  util::RunningStats idb_cost;
  util::RunningStats idb_ls_cost;
  util::RunningStats rfh_time;
  util::RunningStats rfh_ls_time;
  util::RunningStats idb_time;
  util::RunningStats ls_moves;

  util::Timer timer;  // one lap()-segmented stopwatch for every pipeline
  for (int run = 0; run < runs; ++run) {
    util::Rng rng(static_cast<std::uint64_t>(args.seed) + run);
    const core::Instance inst = bench::make_paper_instance(posts, nodes, side, 3, rng);

    timer.lap();  // drop the field-generation segment
    const auto rfh = core::solve_rfh(inst);
    rfh_time.add(timer.lap());
    rfh_cost.add(rfh.cost * 1e6);

    const auto rfh_ls = core::refine_solution(inst, rfh.solution);
    rfh_ls_time.add(timer.lap());
    rfh_ls_cost.add(rfh_ls.cost * 1e6);
    ls_moves.add(rfh_ls.moves_applied);

    const auto idb = core::solve_idb(inst);
    idb_time.add(timer.lap());
    idb_cost.add(idb.cost * 1e6);
    idb_ls_cost.add(core::refine_solution(inst, idb.solution).cost * 1e6);
  }

  util::Table table({"pipeline", "cost [uJ]", "vs IDB [%]", "time [s]"});
  const double reference = idb_cost.mean();
  auto row = [&](const char* name, const util::RunningStats& cost, double seconds) {
    table.begin_row()
        .add(name)
        .add(cost.mean(), 4)
        .add((cost.mean() / reference - 1.0) * 100.0, 2)
        .add(seconds, 3);
  };
  row("RFH", rfh_cost, rfh_time.mean());
  row("RFH + local search", rfh_ls_cost, rfh_time.mean() + rfh_ls_time.mean());
  row("IDB d=1", idb_cost, idb_time.mean());
  row("IDB + local search", idb_ls_cost, idb_time.mean());
  bench::emit(table, args,
              "Ablation: local-search refinement (350x350m, N=50, M=200, avg of " +
                  std::to_string(runs) + " fields; mean LS moves = " +
                  util::format_double(ls_moves.mean(), 1) + ")");
  return 0;
}
