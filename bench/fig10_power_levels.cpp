// Reproduces Fig. 10: impact of the number of transmission power levels.
//
// Paper setup: 500m x 500m, M = 600 nodes, N = 200 posts, k in {3,4,5,6}
// with ranges {25, 50, ..., 25k} m, average of 20 random fields. Finding:
// the cost stays essentially flat in k -- the d^4 amplifier cost makes
// short hops dominate, so extra long ranges go unused.
#include <algorithm>

#include "common.hpp"
#include "core/idb.hpp"
#include "core/rfh.hpp"
#include "core/solution.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);
  const int nodes = 600;
  const int posts = 200;
  const double side = 500.0;
  const std::vector<int> level_counts{3, 4, 5, 6};

  util::Table table({"power levels", "IDB d=1 [uJ]", "RFH [uJ]",
                     "max level used (RFH)", "share of hops at level >= 3 [%]"});
  std::vector<double> xs;
  std::vector<double> idb_series;
  std::vector<double> rfh_series;
  for (const int k : level_counts) {
    util::RunningStats idb_cost;
    util::RunningStats rfh_cost;
    util::RunningStats max_level;
    util::RunningStats long_hops;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.seed) + run);
      const core::Instance inst = bench::make_paper_instance(posts, nodes, side, k, rng);
      idb_cost.add(core::solve_idb(inst).cost * 1e6);
      const auto rfh = core::solve_rfh(inst);
      rfh_cost.add(rfh.cost * 1e6);
      const auto levels = core::solution_levels(inst, rfh.solution);
      int used_max = 0;
      int longs = 0;
      for (int level : levels) {
        used_max = std::max(used_max, level);
        longs += level >= 3 ? 1 : 0;
      }
      max_level.add(used_max + 1);  // 1-based for readability
      long_hops.add(100.0 * longs / static_cast<double>(levels.size()));
    }
    table.begin_row()
        .add(k)
        .add(idb_cost.mean(), 4)
        .add(rfh_cost.mean(), 4)
        .add(max_level.mean(), 2)
        .add(long_hops.mean(), 2);
    xs.push_back(k);
    idb_series.push_back(idb_cost.mean());
    rfh_series.push_back(rfh_cost.mean());
    std::printf("[fig10] finished k=%d\n", k);
  }
  bench::emit(table, args,
              "Fig. 10: cost vs number of power levels (500x500m, N=200, M=600, avg of " +
                  std::to_string(runs) + " fields)");
  {
    viz::ChartOptions options;
    options.title = "Fig. 10: impact of the number of power levels";
    options.x_label = "number of transmission power levels k";
    options.y_label = "total recharging cost [uJ]";
    viz::LineChart chart(options);
    chart.add_series("IDB d=1", xs, idb_series);
    chart.add_series("RFH", xs, rfh_series);
    bench::maybe_save_chart(chart, args, "fig10_power_levels.svg");
  }
  return 0;
}
