// Reproduces Fig. 10: impact of the number of transmission power levels.
//
// Paper setup: 500m x 500m, M = 600 nodes, N = 200 posts, k in {3,4,5,6}
// with ranges {25, 50, ..., 25k} m, average of 20 random fields. Finding:
// the cost stays essentially flat in k -- the d^4 amplifier cost makes
// short hops dominate, so extra long ranges go unused.
//
// Runs on exp::ExperimentRunner.  The level-usage columns come from the
// runner's sol/* diagnostics (sol/max_level, sol/long_hop_share), which
// compute exactly what the legacy bench derived from solution_levels.
#include "common.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 5);

  exp::SweepSpec spec;
  spec.name = "fig10";
  spec.side = 500.0;
  spec.posts_axis = {200};
  spec.nodes_axis = {600};
  spec.levels_axis = {3, 4, 5, 6};
  spec.eta_axis = {0.01};
  spec.runs = runs;
  spec.base_seed = static_cast<std::uint64_t>(args.seed);
  spec.solvers = {"idb", "rfh"};
  const exp::SweepResult result = bench::run_sweep(spec, args);

  util::Table table({"power levels", "IDB d=1 [uJ]", "RFH [uJ]",
                     "max level used (RFH)", "share of hops at level >= 3 [%]"});
  std::vector<double> xs;
  std::vector<double> idb_series;
  std::vector<double> rfh_series;
  for (std::size_t c = 0; c < spec.levels_axis.size(); ++c) {
    const int config = static_cast<int>(c);
    const double idb = result.cost_stats(config, 0).mean() * 1e6;
    const double rfh = result.cost_stats(config, 1).mean() * 1e6;
    table.begin_row()
        .add(spec.levels_axis[c])
        .add(idb, 4)
        .add(rfh, 4)
        .add(result.diag_stats(config, 1, "sol/max_level").mean(), 2)
        .add(result.diag_stats(config, 1, "sol/long_hop_share").mean(), 2);
    xs.push_back(spec.levels_axis[c]);
    idb_series.push_back(idb);
    rfh_series.push_back(rfh);
  }
  bench::emit(table, args,
              "Fig. 10: cost vs number of power levels (500x500m, N=200, M=600, avg of " +
                  std::to_string(runs) + " fields)");
  {
    viz::ChartOptions options;
    options.title = "Fig. 10: impact of the number of power levels";
    options.x_label = "number of transmission power levels k";
    options.y_label = "total recharging cost [uJ]";
    viz::LineChart chart(options);
    chart.add_series("IDB d=1", xs, idb_series);
    chart.add_series("RFH", xs, rfh_series);
    bench::maybe_save_chart(chart, args, "fig10_power_levels.svg");
  }
  std::printf("[fig10] %d trials in %.1f s via the experiment engine\n",
              spec.num_trials(), result.wall_seconds);
  return 0;
}
