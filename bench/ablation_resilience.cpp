// Ablation A5: fault tolerance of co-designed deployments (extension; the
// paper motivates multi-node posts with fault tolerance but does not
// quantify it).
//
// Protocol: plan with IDB on a 500x500 field, then kill k random posts and
// measure (a) how often the survivors stay connected, (b) the cost of
// keeping surviving nodes in place with re-optimized routing, and (c) the
// cost after full redeployment -- both relative to replanning from scratch.
#include <algorithm>

#include "common.hpp"
#include "core/failures.hpp"
#include "core/idb.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::ObsSession obs_session(args);
  const int runs = args.runs_or(args.paper_scale() ? 20 : 8);
  const int posts = 60;
  const int nodes = 240;
  const double side = 400.0;

  util::Table table({"failed posts k", "survived [%]", "fixed-deployment cost [uJ]",
                     "redeployed cost [uJ]", "fixed/redeployed", "nodes lost (mean)"});
  for (const int k : {1, 2, 4, 8, 12}) {
    util::RunningStats survived;
    util::RunningStats fixed_cost;
    util::RunningStats redeployed_cost;
    util::RunningStats ratio;
    util::RunningStats lost;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.seed) + run * 31 + k);
      const core::Instance inst = bench::make_paper_instance(posts, nodes, side, 3, rng);
      const auto plan = core::solve_idb(inst);

      // k distinct victims.
      std::vector<int> victims;
      while (static_cast<int>(victims.size()) < k) {
        const int v = rng.uniform_int(0, posts - 1);
        if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
          victims.push_back(v);
        }
      }

      const core::FailureImpact impact = core::assess_failure(inst, plan.solution, victims);
      survived.add(impact.connected ? 1.0 : 0.0);
      lost.add(impact.nodes_lost);
      if (impact.connected) {
        fixed_cost.add(impact.cost_fixed_deployment * 1e6);
        redeployed_cost.add(impact.cost_redeployed * 1e6);
        ratio.add(impact.cost_fixed_deployment / impact.cost_redeployed);
      }
    }
    table.begin_row()
        .add(k)
        .add(survived.mean() * 100.0, 1)
        .add(fixed_cost.empty() ? 0.0 : fixed_cost.mean(), 4)
        .add(redeployed_cost.empty() ? 0.0 : redeployed_cost.mean(), 4)
        .add(ratio.empty() ? 0.0 : ratio.mean(), 4)
        .add(lost.mean(), 1);
  }
  bench::emit(table, args,
              "Ablation: resilience to post failures (400x400m, N=60, M=240, IDB plans, " +
                  std::to_string(runs) + " fields per k)");
  std::printf("\nfixed/redeployed near 1.0 means surviving nodes happen to sit where a\n"
              "fresh plan would put them -- the co-design's concentration is robust.\n");
  return 0;
}
