// wrsn experiment CLI: run a declarative `wrsn-scenario v1` sweep through
// exp::ExperimentRunner and emit per-trial artifacts + a summary table.
//
//   ./exp_tool --init my.scenario.json           # write a template spec
//   ./exp_tool --spec my.scenario.json           # run it (summary to stdout)
//   ./exp_tool --spec s.json --threads 8 --checkpoint s.ckpt
//              --csv rows.csv --json rows.json
//   ./exp_tool --list-solvers                    # registry catalogue
//
// Determinism: stdout (summary table, --csv=- rows) is bit-identical for
// every --threads value; wall times and progress go to stderr, and the
// nondeterministic seconds column only appears with --timings.  Killing a
// checkpointed run and re-running the same command resumes: finished
// trials are restored from the checkpoint, not re-priced.
//
// Observability: the same --trace/--metrics/--report/--metrics-series/
// --progress[=interval]/--perf surface as plan_tool (io/obs_cli.hpp);
// heartbeats and artifact notes go to stderr, keeping stdout deterministic.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "core/solver.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "io/obs_cli.hpp"
#include "obs/report.hpp"
#include "sim/charging_policy.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  std::string spec_path;
  std::string init_path;
  std::string checkpoint_path;
  std::string csv_path;
  std::string json_path;
  int threads = 1;
  bool timings = false;
  bool list_solvers = false;
  bool list_policies = false;
  std::vector<std::string> charging_policies;
  std::string exact_threads;

  util::Flags flags;
  io::ObsCli obs_cli;
  flags.add_string("spec", &spec_path, "wrsn-scenario v1 file to run");
  flags.add_string("init", &init_path, "write a template scenario to this path and exit");
  flags.add_string("checkpoint", &checkpoint_path,
                   "checkpoint file: append finished trials, resume done ones");
  flags.add_string("csv", &csv_path, "write per-trial CSV rows here ('-' = stdout)");
  flags.add_string("json", &json_path, "write per-trial wrsn-exp-rows v1 JSON here");
  flags.add_int("threads", &threads, "worker threads (0 = all cores); results identical");
  flags.add_bool("timings", &timings, "include nondeterministic seconds in artifacts");
  flags.add_bool("list-solvers", &list_solvers, "print the solver registry and exit");
  flags.add_bool("list-policies", &list_policies,
                 "print the charging-policy registry and exit");
  flags.add_string_list("charging-policy", &charging_policies,
                        "override the spec's policies_to_evaluate (repeatable; "
                        "changes the fingerprint, so use a fresh checkpoint)");
  flags.add_string("exact-threads", &exact_threads,
                   "override the spec's exact_threads axis, e.g. 1,2,4,8: fan every "
                   "exact solver across these thread counts (changes the fingerprint, "
                   "so use a fresh checkpoint)");
  obs_cli.register_flags(flags);
  if (!flags.parse(argc, argv)) return 0;

  try {
    if (list_solvers) {
      const auto& registry = core::SolverRegistry::global();
      util::Table table({"solver", "description"});
      for (const std::string& name : registry.names()) {
        table.begin_row().add(name).add(registry.help(name));
      }
      table.print_ascii(std::cout);
      return 0;
    }
    if (list_policies) {
      const auto& registry = sim::ChargingPolicyRegistry::global();
      util::Table table({"policy", "description"});
      for (const std::string& name : registry.names()) {
        table.begin_row().add(name).add(registry.help(name));
      }
      table.print_ascii(std::cout);
      return 0;
    }
    if (!init_path.empty()) {
      exp::SweepSpec template_spec;
      template_spec.name = "example";
      template_spec.solvers = {"rfh", "idb", "balanced"};
      template_spec.save(init_path);
      std::printf("wrote template scenario %s\n", init_path.c_str());
      return 0;
    }
    if (spec_path.empty()) {
      std::fprintf(stderr, "exp_tool: --spec=<file> is required (or --init / --list-solvers)\n");
      return 1;
    }

    exp::SweepSpec spec = exp::SweepSpec::load(spec_path);
    if (!charging_policies.empty()) {
      spec.policies_to_evaluate = charging_policies;
      spec.validate();
    }
    if (!exact_threads.empty()) {
      spec.exact_threads_axis.clear();
      std::size_t start = 0;
      while (start <= exact_threads.size()) {
        const std::size_t comma = exact_threads.find(',', start);
        const std::string token = exact_threads.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        try {
          std::size_t used = 0;
          const int value = std::stoi(token, &used);
          if (used != token.size()) throw std::invalid_argument(token);
          spec.exact_threads_axis.push_back(value);
        } catch (const std::exception&) {
          std::fprintf(stderr,
                       "exp_tool: --exact-threads expects a comma-separated integer "
                       "list (got '%s')\n",
                       token.c_str());
          return 1;
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      spec.validate();
    }
    obs_cli.begin();
    exp::RunnerOptions options;
    options.threads = threads;
    options.checkpoint_path = checkpoint_path;
    options.progress = obs_cli.progress();
    exp::ExperimentRunner runner(spec, options);
    const exp::SweepResult result = runner.run();

    // Deterministic summary: one row per (config, solver) cell.
    const std::vector<exp::ScenarioConfig> configs = spec.expand();
    util::Table summary({"config", "solver", "mean cost [uJ]", "min", "max", "ok"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
      for (std::size_t s = 0; s < result.solver_names.size(); ++s) {
        const util::RunningStats stats =
            result.cost_stats(static_cast<int>(c), static_cast<int>(s));
        summary.begin_row()
            .add(configs[c].label())
            .add(result.solver_names[s])
            .add(stats.mean() * 1e6, 4)
            .add(stats.min() * 1e6, 4)
            .add(stats.max() * 1e6, 4)
            .add(std::to_string(stats.count()) + "/" + std::to_string(spec.runs));
      }
    }
    std::cout << "== " << spec.name << ": "
              << exp::SweepSpec::fingerprint_hex(spec.fingerprint()) << " ==\n";
    summary.print_ascii(std::cout);

    // Charging-policy comparison: one row per (config, solver, policy) cell,
    // built from the pol<i>/* diagnostics the runner folded into each trial.
    if (!spec.policies_to_evaluate.empty()) {
      util::Table policy_table({"config", "solver", "policy", "mean delivery",
                                "dead nodes", "visits", "RF/round [mJ]", "travel [J]"});
      for (std::size_t c = 0; c < configs.size(); ++c) {
        for (std::size_t s = 0; s < result.solver_names.size(); ++s) {
          for (std::size_t i = 0; i < spec.policies_to_evaluate.size(); ++i) {
            const std::string prefix = "pol" + std::to_string(i);
            const auto stat = [&](const char* key) {
              return result.diag_stats(static_cast<int>(c), static_cast<int>(s),
                                       prefix + "/" + key);
            };
            policy_table.begin_row()
                .add(configs[c].label())
                .add(result.solver_names[s])
                .add(spec.policies_to_evaluate[i])
                .add(stat("delivery").mean(), 4)
                .add(stat("dead_nodes").mean(), 2)
                .add(stat("visits").mean(), 1)
                .add(stat("radiated_per_round").mean() * 1e3, 4)
                .add(stat("travel_j").mean(), 1);
          }
        }
      }
      std::cout << "\n== charging policies ==\n";
      policy_table.print_ascii(std::cout);
    }

    if (!csv_path.empty()) {
      if (csv_path == "-") {
        exp::write_rows_csv(std::cout, result, timings);
      } else {
        std::ofstream out(csv_path);
        if (!out) throw std::runtime_error("cannot open '" + csv_path + "' for writing");
        exp::write_rows_csv(out, result, timings);
        std::fprintf(stderr, "[exp] wrote %s\n", csv_path.c_str());
      }
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) throw std::runtime_error("cannot open '" + json_path + "' for writing");
      exp::write_rows_json(out, spec, result, timings);
      std::fprintf(stderr, "[exp] wrote %s\n", json_path.c_str());
    }
    std::fprintf(stderr, "[exp] %d trials (%d resumed) in %.1f s on %d thread(s)\n",
                 spec.num_trials(), result.resumed_trials, result.wall_seconds, threads);

    obs::RunReport run_report("wrsn experiment sweep");
    run_report.begin_section("sweep")
        .add("spec", spec.name)
        .add("fingerprint", exp::SweepSpec::fingerprint_hex(spec.fingerprint()))
        .add("trials", spec.num_trials())
        .add("resumed_trials", result.resumed_trials)
        .add("threads", threads);
    for (const std::string& name : result.solver_names) run_report.add("solver", name);
    if (!obs_cli.finish(&run_report)) return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "exp_tool: %s\n", error.what());
    return 1;
  }
  return 0;
}
