// Load generator for wrsn_serve (docs/service.md): the measurement half of
// BENCH_service.json and the CI service smoke job.
//
// Modes:
//   --once        one request, print the reply (the README quickstart)
//   --shutdown    ask the server to stop, then exit
//   default       closed-loop load: --clients threads, each sending
//                 back-to-back requests for --duration-s seconds
//   --rate=R      open-loop load: each client schedules R requests/sec and
//                 latency includes the backlog a slow server accumulates
//
// The cold/warm fingerprint mix is controlled by --scenarios=M (requests
// rotate over M distinct seeds: first pass per seed is a session-cache miss,
// the rest are hits) and --unique (every request a fresh seed = all cold).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "util/flags.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string unix_path;
  int tcp_port = -1;
  std::string method = "plan";
  int clients = 1;
  double duration_s = 5.0;
  double rate = 0.0;  // per client; 0 = closed loop
  int scenarios = 1;
  bool unique = false;
  int posts = 12;
  int nodes = 48;
  double side = 300.0;
  std::int64_t seed = 1;
  std::string solver = "rfh+ls";
  double deadline_s = 0.0;
  bool once = false;
  bool print_report = false;
  bool shutdown = false;
  bool json = false;
};

wrsn::svc::Client connect(const Options& options) {
  // The daemon may still be binding (README backgrounds it with `&`), so
  // retry for a few seconds before giving up.
  for (int attempt = 0;; ++attempt) {
    try {
      if (!options.unix_path.empty()) {
        return wrsn::svc::Client::connect_unix(options.unix_path);
      }
      return wrsn::svc::Client::connect_tcp(options.tcp_port);
    } catch (const std::exception&) {
      if (attempt >= 50) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

wrsn::io::Json scenario_json(const Options& options, std::int64_t seed) {
  wrsn::io::Json scenario = wrsn::io::Json::object();
  scenario.set("posts", wrsn::io::Json(options.posts));
  scenario.set("nodes", wrsn::io::Json(options.nodes));
  scenario.set("side", wrsn::io::Json(options.side));
  scenario.set("seed", wrsn::io::Json(seed));
  return scenario;
}

wrsn::io::Json request_params(const Options& options, std::int64_t seed, std::int64_t sequence) {
  wrsn::io::Json params = wrsn::io::Json::object();
  params.set("scenario", scenario_json(options, seed));
  if (options.method == "plan") {
    params.set("solver", wrsn::io::Json(options.solver));
    params.set("report", wrsn::io::Json(false));
  } else if (options.method == "evaluate") {
    // All-ones deployment with one bumped post: after the first full build,
    // consecutive requests price by single-post incremental repair.
    wrsn::io::Json deployment = wrsn::io::Json::array();
    const int bumped = static_cast<int>(sequence % options.posts);
    for (int p = 0; p < options.posts; ++p) {
      deployment.push_back(wrsn::io::Json(p == bumped ? 2 : 1));
    }
    wrsn::io::Json deployments = wrsn::io::Json::array();
    deployments.push_back(std::move(deployment));
    params.set("deployments", std::move(deployments));
  }
  return params;
}

struct WorkerResult {
  std::vector<double> latencies_ms;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
};

void run_worker(const Options& options, int worker_index, std::atomic<std::int64_t>& next_seed,
                WorkerResult& result) {
  wrsn::svc::Client client = connect(options);
  const Clock::time_point start = Clock::now();
  const Clock::time_point stop =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));
  std::int64_t sequence = 0;
  Clock::time_point next_send = start;
  while (Clock::now() < stop) {
    if (options.rate > 0.0) {
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / options.rate));
    }
    const std::int64_t seed =
        options.unique
            ? next_seed.fetch_add(1)
            : options.seed + (worker_index + sequence * options.clients) % options.scenarios;
    // Open loop charges latency from the scheduled send time, so queueing
    // a slow server builds up is part of the number; closed loop from now.
    const Clock::time_point charged_from =
        options.rate > 0.0 ? next_send - std::chrono::duration_cast<Clock::duration>(
                                             std::chrono::duration<double>(1.0 / options.rate))
                           : Clock::now();
    try {
      const wrsn::io::Json reply = client.call(
          options.method, request_params(options, seed, sequence), options.deadline_s);
      ++result.requests;
      const wrsn::io::Json* ok = reply.find("ok");
      if (ok == nullptr || !ok->as_bool()) {
        ++result.errors;
      } else {
        result.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - charged_from).count());
      }
    } catch (const std::exception&) {
      ++result.requests;
      ++result.errors;
      break;  // connection is gone; this worker is done
    }
    ++sequence;
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  wrsn::util::Flags flags;
  flags.add_string("unix-socket", &options.unix_path, "connect to this unix socket path")
      .add_int("tcp-port", &options.tcp_port, "connect to this loopback TCP port")
      .add_string("method", &options.method, "request method: plan | evaluate | ping")
      .add_int("clients", &options.clients, "concurrent client connections")
      .add_double("duration-s", &options.duration_s, "load duration per client")
      .add_double("rate", &options.rate, "open-loop requests/sec per client (0 = closed loop)")
      .add_int("scenarios", &options.scenarios, "distinct scenario seeds to rotate over")
      .add_bool("unique", &options.unique, "fresh seed per request (all cache misses)")
      .add_int("posts", &options.posts, "scenario posts")
      .add_int("nodes", &options.nodes, "scenario nodes")
      .add_double("side", &options.side, "scenario field side length [m]")
      .add_int64("seed", &options.seed, "base scenario seed")
      .add_string("solver", &options.solver, "solver spec for plan requests")
      .add_double("deadline-s", &options.deadline_s, "per-request deadline (0 = server default)")
      .add_bool("once", &options.once, "send one request, print the reply, exit")
      .add_bool("print-report", &options.print_report,
                "with --once: print only the plan report text (byte-diffable "
                "against plan_tool --report)")
      .add_bool("shutdown", &options.shutdown, "ask the server to stop, then exit")
      .add_bool("json", &options.json, "print the summary as one JSON object");
  if (!flags.parse(argc, argv)) return 2;

  if (options.unix_path.empty() && options.tcp_port < 0) {
    std::fprintf(stderr, "loadgen_tool: need --unix-socket or --tcp-port\n");
    return 2;
  }
  if (options.clients < 1 || options.scenarios < 1 || options.posts < 1 ||
      options.nodes < options.posts) {
    std::fprintf(stderr, "loadgen_tool: invalid --clients/--scenarios/--posts/--nodes\n");
    return 2;
  }

  try {
    if (options.shutdown) {
      wrsn::svc::Client client = connect(options);
      const wrsn::io::Json reply =
          client.call("shutdown", wrsn::io::Json::object(), options.deadline_s);
      std::printf("%s\n", reply.dump().c_str());
      return reply.find("ok") != nullptr && reply.find("ok")->as_bool() ? 0 : 1;
    }

    if (options.once) {
      wrsn::svc::Client client = connect(options);
      wrsn::io::Json params = request_params(options, options.seed, 0);
      if (options.print_report) params.set("report", wrsn::io::Json(true));
      const wrsn::io::Json reply = client.call(options.method, std::move(params),
                                               options.deadline_s);
      const wrsn::io::Json* ok = reply.find("ok");
      const bool success = ok != nullptr && ok->as_bool();
      const wrsn::io::Json* result = reply.find("result");
      if (options.print_report && success && result != nullptr &&
          result->find("report") != nullptr) {
        std::fputs(result->find("report")->as_string().c_str(), stdout);
      } else {
        std::printf("%s\n", reply.dump(2).c_str());
      }
      return success ? 0 : 1;
    }

    std::atomic<std::int64_t> next_seed{1000};
    std::vector<WorkerResult> results(static_cast<std::size_t>(options.clients));
    std::vector<std::thread> threads;
    const Clock::time_point start = Clock::now();
    for (int i = 0; i < options.clients; ++i) {
      threads.emplace_back(run_worker, std::cref(options), i, std::ref(next_seed),
                           std::ref(results[static_cast<std::size_t>(i)]));
    }
    for (std::thread& thread : threads) thread.join();
    const double wall_s = std::chrono::duration<double>(Clock::now() - start).count();

    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::vector<double> latencies;
    for (const WorkerResult& result : results) {
      requests += result.requests;
      errors += result.errors;
      latencies.insert(latencies.end(), result.latencies_ms.begin(),
                       result.latencies_ms.end());
    }
    std::sort(latencies.begin(), latencies.end());
    const double rps = wall_s > 0.0 ? static_cast<double>(requests - errors) / wall_s : 0.0;
    const double p50 = percentile(latencies, 0.50);
    const double p99 = percentile(latencies, 0.99);

    if (options.json) {
      wrsn::io::Json summary = wrsn::io::Json::object();
      summary.set("schema", wrsn::io::Json("wrsn-service-bench v1"));
      summary.set("method", wrsn::io::Json(options.method));
      summary.set("clients", wrsn::io::Json(options.clients));
      summary.set("requests", wrsn::io::Json(requests));
      summary.set("errors", wrsn::io::Json(errors));
      summary.set("wall_s", wrsn::io::Json(wall_s));
      summary.set("rps", wrsn::io::Json(rps));
      summary.set("p50_ms", wrsn::io::Json(p50));
      summary.set("p99_ms", wrsn::io::Json(p99));
      std::printf("%s\n", summary.dump().c_str());
    } else {
      std::printf("loadgen %s clients=%d requests=%llu errors=%llu rps=%.1f "
                  "p50_ms=%.3f p99_ms=%.3f\n",
                  options.method.c_str(), options.clients,
                  static_cast<unsigned long long>(requests),
                  static_cast<unsigned long long>(errors), rps, p50, p99);
    }
    return errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen_tool: %s\n", e.what());
    return 1;
  }
}
