// Maintenance planning for an operating rechargeable network.
//
// Given a planned network, an operations team needs three numbers before
// going live:
//   1. how many chargers the site needs (fleet sizing),
//   2. what happens when posts fail (resilience drill),
//   3. the patrol schedule (tour, cycle time, battery floor).
// This example produces that report from the library's extension APIs
// (sim::fleet, core::failures, sim::tour) on top of an IDB plan.
//
// Run:  ./maintenance_planner [--posts 18] [--nodes 54] [--seed 3]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/failures.hpp"
#include "core/idb.hpp"
#include "sim/fleet.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  int posts = 18;
  int nodes = 54;
  std::int64_t seed = 3;
  double side = 250.0;
  util::Flags flags;
  flags.add_int("posts", &posts, "number of posts");
  flags.add_int("nodes", &nodes, "sensor-node budget");
  flags.add_double("side", &side, "field side length [m]");
  flags.add_int64("seed", &seed, "field seed");
  if (!flags.parse(argc, argv)) return 0;

  // Plan.
  util::Rng rng(static_cast<std::uint64_t>(seed));
  geom::FieldConfig field_cfg;
  field_cfg.width = side;
  field_cfg.height = side;
  field_cfg.num_posts = posts;
  const auto radio = energy::RadioModel::uniform_levels(3, 25.0);
  geom::Field field = geom::generate_field(field_cfg, rng);
  while (!geom::is_connected(field, radio.max_range())) {
    field = geom::generate_field(field_cfg, rng);
  }
  const auto instance = core::Instance::geometric(
      field, radio, energy::ChargingModel::linear(0.01), nodes);
  const auto plan = core::solve_idb(instance);
  std::printf("plan: %d posts / %d nodes on a %.0fx%.0fm site, cost %s per bit\n\n", posts,
              nodes, side, side, util::format_energy(plan.cost).c_str());

  // 1. Fleet sizing.
  sim::NetworkConfig net_cfg;
  net_cfg.bits_per_report = 4096;
  net_cfg.battery_capacity_j = 0.02;
  sim::ChargerConfig charger_cfg;
  charger_cfg.speed_mps = 2.0;
  charger_cfg.radiated_power_w = 20.0;
  charger_cfg.low_watermark = 0.5;
  const int fleet = sim::find_min_fleet(instance, plan.solution, charger_cfg, net_cfg,
                                        /*rounds=*/1000, /*max_chargers=*/8);
  const auto patrol = sim::analyze_patrol(instance, plan.solution, charger_cfg,
                                          net_cfg.bits_per_report);
  const auto tour = sim::plan_tour(instance);
  util::Table fleet_table({"fleet metric", "value"});
  fleet_table.begin_row().add("patrol tour [m]").add(tour.length_m, 1);
  fleet_table.begin_row().add("RF demand [W]").add(patrol.demand_w, 4);
  fleet_table.begin_row().add("single-charger duty cycle").add(patrol.duty, 4);
  fleet_table.begin_row().add("analytic min chargers").add(sim::fleet_size_lower_bound(
      instance, plan.solution, charger_cfg, net_cfg.bits_per_report));
  fleet_table.begin_row().add("simulated min chargers").add(fleet <= 8 ? std::to_string(fleet)
                                                                       : std::string(">8"));
  if (patrol.feasible) {
    fleet_table.begin_row().add("patrol cycle [min]").add(patrol.cycle_time_s / 60.0, 1);
    fleet_table.begin_row().add("battery floor per node [J]").add(
        patrol.min_battery_capacity_j, 4);
  }
  fleet_table.print_ascii(std::cout);

  // 2. Resilience drill: single-post failures, worst offenders first.
  struct Drill {
    int post;
    bool survives;
    double cost_ratio;  // fixed-deployment cost / pre-failure cost
  };
  std::vector<Drill> drills;
  for (int victim = 0; victim < posts; ++victim) {
    const auto impact = core::assess_failure(instance, plan.solution, {victim});
    drills.push_back(Drill{victim, impact.connected,
                           impact.connected ? impact.cost_fixed_deployment / plan.cost : 0.0});
  }
  std::sort(drills.begin(), drills.end(), [](const Drill& a, const Drill& b) {
    if (a.survives != b.survives) return !a.survives;
    return a.cost_ratio > b.cost_ratio;
  });
  std::printf("\nresilience drill (worst single-post failures first):\n");
  util::Table drill_table({"failed post", "network survives", "cost vs pre-failure"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, drills.size()); ++i) {
    const Drill& d = drills[i];
    drill_table.begin_row()
        .add(d.post)
        .add(d.survives ? "yes" : "NO -- posts stranded")
        .add(d.survives ? util::format_double(d.cost_ratio, 3) : std::string("-"));
  }
  drill_table.print_ascii(std::cout);
  const int fatal =
      static_cast<int>(std::count_if(drills.begin(), drills.end(),
                                     [](const Drill& d) { return !d.survives; }));
  std::printf("\n%d of %d single-post failures would strand part of the network;\n"
              "those posts deserve redundant placement or a relay.\n",
              fatal, posts);
  return 0;
}
