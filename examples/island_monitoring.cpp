// Island environmental monitoring -- the paper's Fig. 2 scenario.
//
// A wildlife-monitoring network on an island: posts are placed where the
// terrain demands (shoreline ring + interior wetland cluster), the base
// station sits at the dock, and a boat-mounted charger visits posts. The
// example compares a charging-oblivious plan with the paper's co-design and
// shows where the spare nodes go.
//
// Run:  ./island_monitoring [--nodes M] [--eta E]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/baseline.hpp"
#include "core/cost.hpp"
#include "core/rfh.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace wrsn;

namespace {

/// Hand-laid island: a shoreline ring of posts plus an interior cluster,
/// dock (base station) at the south shore.
geom::Field island_field() {
  geom::Field field;
  field.width = 300.0;
  field.height = 240.0;
  field.base_station = {150.0, 0.0};  // the dock
  // Shoreline ring (clockwise from the dock).
  field.posts = {
      {90.0, 20.0},  {40.0, 60.0},   {25.0, 120.0}, {60.0, 180.0},
      {120.0, 215.0}, {190.0, 210.0}, {250.0, 170.0}, {270.0, 110.0},
      {245.0, 50.0}, {200.0, 18.0},
      // Interior wetland cluster -- the biodiversity hotspot.
      {150.0, 70.0}, {170.0, 95.0}, {135.0, 105.0},
  };
  return field;
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 40;
  double eta = 0.01;
  util::Flags flags;
  flags.add_int("nodes", &nodes, "sensor-node budget");
  flags.add_double("eta", &eta, "single-node charging efficiency");
  if (!flags.parse(argc, argv)) return 0;

  const geom::Field field = island_field();
  const auto radio = energy::RadioModel::uniform_levels(3, 25.0);
  const auto charging = energy::ChargingModel::linear(eta);
  const auto instance = core::Instance::geometric(field, radio, charging, nodes);

  const core::BaselineResult naive = core::solve_balanced_baseline(instance);
  const core::RfhResult plan = core::solve_rfh(instance);

  std::printf("island monitoring: %d posts, %d nodes, eta = %.3f\n",
              instance.num_posts(), nodes, eta);
  std::printf("  charging-oblivious plan : %s per reported bit\n",
              util::format_energy(naive.cost).c_str());
  std::printf("  co-designed plan (RFH)  : %s per reported bit\n",
              util::format_energy(plan.cost).c_str());
  std::printf("  boat-charger energy saved: %.1f%%\n\n",
              (1.0 - plan.cost / naive.cost) * 100.0);

  const auto energy_per_post = core::per_post_energy(instance, plan.solution.tree);
  const auto levels = core::solution_levels(instance, plan.solution);
  util::Table table({"post", "role", "nodes (naive)", "nodes (co-design)", "next hop",
                     "tx level", "per-round energy [nJ]"});
  const char* roles[] = {"shore", "shore", "shore", "shore", "shore", "shore", "shore",
                         "shore", "shore", "shore", "wetland", "wetland", "wetland"};
  for (int p = 0; p < instance.num_posts(); ++p) {
    const int parent = plan.solution.tree.parent(p);
    table.begin_row()
        .add(p)
        .add(roles[p])
        .add(naive.solution.deployment[static_cast<std::size_t>(p)])
        .add(plan.solution.deployment[static_cast<std::size_t>(p)])
        .add(parent == instance.graph().base_station() ? std::string("dock")
                                                       : std::to_string(parent))
        .add(levels[static_cast<std::size_t>(p)] + 1)
        .add(energy_per_post[static_cast<std::size_t>(p)] * 1e9, 1);
  }
  table.print_ascii(std::cout);
  std::printf("\nnote how relay posts near the dock hold several nodes: the charger\n"
              "tops them up %dx as efficiently, so funneling traffic through them\n"
              "minimizes what the boat must radiate.\n",
              *std::max_element(plan.solution.deployment.begin(),
                                plan.solution.deployment.end()));
  return 0;
}
