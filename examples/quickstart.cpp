// Quickstart: plan a wireless-rechargeable sensor network in ~40 lines.
//
//   1. Describe the field (posts + base station).
//   2. Pick the radio and the charging model.
//   3. Solve for a joint deployment + routing plan.
//   4. Inspect the plan and its recharging cost.
//
// Build & run:  ./quickstart [--posts N] [--nodes M] [--seed S]
#include <cstdio>
#include <iostream>

#include "core/idb.hpp"
#include "core/rfh.hpp"
#include "geom/field.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  int posts = 12;
  int nodes = 30;
  std::int64_t seed = 7;
  wrsn::util::Flags flags;
  flags.add_int("posts", &posts, "number of monitoring posts");
  flags.add_int("nodes", &nodes, "sensor-node budget (>= posts)");
  flags.add_int64("seed", &seed, "field RNG seed");
  if (!flags.parse(argc, argv)) return 0;

  // 1. A random 200m x 200m field, base station in the lower-left corner.
  wrsn::util::Rng rng(static_cast<std::uint64_t>(seed));
  wrsn::geom::FieldConfig field_cfg;
  field_cfg.width = 200.0;
  field_cfg.height = 200.0;
  field_cfg.num_posts = posts;

  // 2. Three transmit power levels reaching 25/50/75 m (Heinzelman energy
  //    model) and the linear simultaneous-charging gain measured in the
  //    paper's field experiment (eta ~ 1% per node).
  const auto radio = wrsn::energy::RadioModel::uniform_levels(3, 25.0);

  // Resample until every post can reach the base station at maximum power.
  wrsn::geom::Field field = wrsn::geom::generate_field(field_cfg, rng);
  while (!wrsn::geom::is_connected(field, radio.max_range())) {
    field = wrsn::geom::generate_field(field_cfg, rng);
  }
  const auto charging = wrsn::energy::ChargingModel::linear(0.01);

  const auto instance = wrsn::core::Instance::geometric(field, radio, charging, nodes);

  // 3. Solve. RFH is the fast heuristic; IDB is slower but closer to
  //    optimal -- compare both.
  const wrsn::core::RfhResult rfh = wrsn::core::solve_rfh(instance);
  const wrsn::core::IdbResult idb = wrsn::core::solve_idb(instance);

  // 4. Report.
  std::printf("planned %d nodes over %d posts\n", nodes, posts);
  std::printf("  RFH total recharging cost: %s per reported bit\n",
              wrsn::util::format_energy(rfh.cost).c_str());
  std::printf("  IDB total recharging cost: %s per reported bit\n",
              wrsn::util::format_energy(idb.cost).c_str());

  wrsn::util::Table table({"post", "x [m]", "y [m]", "nodes", "next hop", "tx level"});
  const auto levels = wrsn::core::solution_levels(instance, idb.solution);
  for (int p = 0; p < instance.num_posts(); ++p) {
    const int parent = idb.solution.tree.parent(p);
    table.begin_row()
        .add(p)
        .add(field.posts[static_cast<std::size_t>(p)].x, 1)
        .add(field.posts[static_cast<std::size_t>(p)].y, 1)
        .add(idb.solution.deployment[static_cast<std::size_t>(p)])
        .add(parent == instance.graph().base_station() ? std::string("base")
                                                       : std::to_string(parent))
        .add(levels[static_cast<std::size_t>(p)] + 1);
  }
  table.print_ascii(std::cout);
  return 0;
}
