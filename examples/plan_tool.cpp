// wrsn planning CLI: generate or load a field, co-design deployment and
// routing, and emit the plan as text + SVG, with a charger feasibility
// report.  The "product" face of the library: everything a deployment
// engineer needs in one command.
//
//   ./plan_tool --posts 40 --nodes 160 --out plan            # random field
//   ./plan_tool --field site.txt --nodes 90 --solver idb     # surveyed site
//
// Outputs <out>.field.txt, <out>.solution.txt, <out>.svg.
#include <cstdio>
#include <iostream>

#include "core/idb.hpp"
#include "core/local_search.hpp"
#include "core/rfh.hpp"
#include "io/serialize.hpp"
#include "sim/tour.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "viz/svg.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  int posts = 40;
  int nodes = 160;
  double side = 300.0;
  std::int64_t seed = 1;
  std::string solver = "rfh+ls";
  std::string field_path;
  std::string out = "plan";
  double eta = 0.01;
  double charger_power = 10.0;
  double charger_speed = 5.0;
  int bits = 4096;

  util::Flags flags;
  flags.add_int("posts", &posts, "posts for a generated field");
  flags.add_int("nodes", &nodes, "sensor-node budget");
  flags.add_double("side", &side, "generated field side length [m]");
  flags.add_int64("seed", &seed, "RNG seed for field generation");
  flags.add_string("solver", &solver, "rfh | rfh+ls | idb | idb+ls");
  flags.add_string("field", &field_path, "load a surveyed field instead of generating");
  flags.add_string("out", &out, "output file prefix");
  flags.add_double("eta", &eta, "single-node charging efficiency");
  flags.add_double("charger-power", &charger_power, "charger RF power [W]");
  flags.add_double("charger-speed", &charger_speed, "charger travel speed [m/s]");
  flags.add_int("bits", &bits, "bits per report round");
  if (!flags.parse(argc, argv)) return 0;

  // Field: surveyed or generated.
  geom::Field field;
  const auto radio = energy::RadioModel::uniform_levels(3, 25.0);
  if (!field_path.empty()) {
    field = io::load_field(field_path);
    std::printf("loaded field '%s': %zu posts\n", field_path.c_str(), field.posts.size());
  } else {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    geom::FieldConfig cfg;
    cfg.width = side;
    cfg.height = side;
    cfg.num_posts = posts;
    field = geom::generate_field(cfg, rng);
    int attempts = 0;
    while (!geom::is_connected(field, radio.max_range()) && ++attempts < 1000) {
      field = geom::generate_field(cfg, rng);
    }
    std::printf("generated %dx%.0fm field with %d posts (seed %lld)\n", static_cast<int>(side),
                side, posts, static_cast<long long>(seed));
  }

  const auto instance = core::Instance::geometric(
      field, radio, energy::ChargingModel::linear(eta), nodes);

  // Solve.
  core::Solution solution{graph::RoutingTree(1, 1), {}};
  double cost = 0.0;
  if (solver == "rfh" || solver == "rfh+ls") {
    const auto rfh = core::solve_rfh(instance);
    solution = rfh.solution;
    cost = rfh.cost;
  } else if (solver == "idb" || solver == "idb+ls") {
    const auto idb = core::solve_idb(instance);
    solution = idb.solution;
    cost = idb.cost;
  } else {
    std::fprintf(stderr, "unknown solver '%s'\n", solver.c_str());
    return 1;
  }
  if (solver.ends_with("+ls")) {
    const auto refined = core::refine_solution(instance, solution);
    solution = refined.solution;
    cost = refined.cost;
  }
  std::printf("solver %s: total recharging cost %s per reported bit\n", solver.c_str(),
              util::format_energy(cost).c_str());

  // Charger feasibility.
  sim::ChargerConfig charger;
  charger.radiated_power_w = charger_power;
  charger.speed_mps = charger_speed;
  const auto feasibility = sim::analyze_patrol(instance, solution, charger, bits);
  const auto tour = sim::plan_tour(instance);
  util::Table report({"charger metric", "value"});
  report.begin_row().add("patrol tour length [m]").add(tour.length_m, 1);
  report.begin_row().add("network RF demand [W]").add(feasibility.demand_w, 4);
  report.begin_row().add("charger duty cycle").add(feasibility.duty, 4);
  report.begin_row().add("feasible with one charger").add(feasibility.feasible ? "yes" : "NO");
  if (feasibility.feasible) {
    report.begin_row().add("patrol cycle [min]").add(feasibility.cycle_time_s / 60.0, 2);
    report.begin_row().add("min battery per node [J]").add(
        feasibility.min_battery_capacity_j, 4);
  }
  report.print_ascii(std::cout);

  // Artifacts.
  io::save_field(out + ".field.txt", field);
  io::save_solution(out + ".solution.txt", solution);
  viz::save_svg(out + ".svg", instance, &solution);
  std::printf("wrote %s.field.txt, %s.solution.txt, %s.svg\n", out.c_str(), out.c_str(),
              out.c_str());
  return 0;
}
