// wrsn planning CLI: generate or load a field, co-design deployment and
// routing, and emit the plan as text + SVG, with a charger feasibility
// report.  The "product" face of the library: everything a deployment
// engineer needs in one command.
//
//   ./plan_tool --posts 40 --nodes 160 --out plan            # random field
//   ./plan_tool --field site.txt --nodes 90 --solver idb     # surveyed site
//   ./plan_tool --trace=t.json --metrics=m.txt --report=r.txt
//   ./plan_tool --solver exact --posts 9 --progress          # live heartbeats
//
// Planning itself (solver-spec fold-in, field sampling, feasibility, report
// sections) lives in src/svc/planner.* and is shared with the wrsn_serve
// daemon, so a `plan` RPC and this CLI produce byte-identical reports for
// the same scenario (docs/service.md).
//
// Outputs <out>.field.txt, <out>.solution.txt, <out>.svg, and -- when the
// observability flags are set -- a Chrome trace, a wrsn-metrics dump, a
// wrsn-report summary, a wrsn-metrics-series time series, and live
// wrsn-progress heartbeats on stderr (docs/observability.md).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/charger_placement.hpp"
#include "core/solver.hpp"
#include "io/obs_cli.hpp"
#include "io/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "sim/charger_sim.hpp"
#include "sim/charging_policy.hpp"
#include "sim/network_sim.hpp"
#include "sim/tour.hpp"
#include "svc/planner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "viz/svg.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  int posts = 40;
  int nodes = 160;
  double side = 300.0;
  std::int64_t seed = 1;
  std::string solver = "rfh+ls";
  std::string field_path;
  std::string out = "plan";
  double eta = 0.01;
  double charger_power = 10.0;
  double charger_speed = 5.0;
  int bits = 4096;
  int sim_rounds = 200;
  double sim_faults = 0.0;
  double sim_node_faults = 0.0;
  double sim_outages = 0.0;
  std::string sim_repair = "none";
  std::int64_t sim_fault_seed = 7;
  int threads = 1;
  std::string ls_strategy = "first";
  int exact_threads = 1;
  int exact_split_depth = 0;
  double exact_budget = 0.0;
  std::vector<std::string> charging_policies;
  int policy_rounds = 2000;
  double placement_radius = 50.0;
  double placement_power = 5.0;

  util::Flags flags;
  io::ObsCli obs_cli;
  flags.add_int("posts", &posts, "posts for a generated field");
  flags.add_int("nodes", &nodes, "sensor-node budget");
  flags.add_double("side", &side, "generated field side length [m]");
  flags.add_int64("seed", &seed, "RNG seed for field generation");
  flags.add_string("solver", &solver,
                   "registry spec, e.g. rfh+ls, idb:delta=2, rfh:alloc=greedy, exact");
  flags.add_string("field", &field_path, "load a surveyed field instead of generating");
  flags.add_string("out", &out, "output file prefix");
  flags.add_double("eta", &eta, "single-node charging efficiency");
  flags.add_double("charger-power", &charger_power, "charger RF power [W]");
  flags.add_double("charger-speed", &charger_speed, "charger travel speed [m/s]");
  flags.add_int("bits", &bits, "bits per report round");
  flags.add_int("sim-rounds", &sim_rounds, "reporting rounds to simulate on the plan");
  flags.add_double("sim-faults", &sim_faults,
                   "per-round post destruction hazard during the simulation");
  flags.add_double("sim-node-faults", &sim_node_faults, "per-round node death hazard");
  flags.add_double("sim-outages", &sim_outages, "per-round transient link outage hazard");
  flags.add_string("sim-repair", &sim_repair,
                   "reaction to faults: none | reroute | maintain");
  flags.add_int64("sim-fault-seed", &sim_fault_seed, "fault model RNG seed");
  flags.add_int("threads", &threads, "local-search pricing threads (0 = all cores)");
  flags.add_string("ls-strategy", &ls_strategy, "local-search move rule: first | best");
  flags.add_int("exact-threads", &exact_threads,
                "exact-solver search workers (0 = all cores); closed-run results are "
                "bit-identical for every value");
  flags.add_int("exact-split-depth", &exact_split_depth,
                "exact-solver frontier split depth (0 = auto)");
  flags.add_double("exact-budget", &exact_budget,
                   "exact-solver anytime wall-clock budget [s]; 0 = closed run");
  flags.add_string_list("charging-policy", &charging_policies,
                        "charging-policy spec to co-simulate on the plan (repeatable; "
                        "'fixed' uses the greedy charger placement)");
  flags.add_int("policy-rounds", &policy_rounds, "reporting rounds per policy run");
  flags.add_double("placement-radius", &placement_radius,
                   "fixed-charger coverage radius [m] for the 'fixed' policy");
  flags.add_double("placement-power", &placement_power,
                   "fixed-charger RF power [W] for the 'fixed' policy");
  obs_cli.register_flags(flags);
  if (!flags.parse(argc, argv)) return 0;

  // Observability: one global registry + trace buffer for the whole run,
  // armed per the shared --trace/--metrics/--report/--progress/--perf flags.
  obs::Registry& registry = obs::Registry::global();
  obs::MetricsSink metrics_sink(registry);
  obs_cli.begin();

  // Scenario block shared with the service: the same fields a `plan` RPC
  // carries, so the field sampled here matches the daemon's byte for byte.
  svc::Scenario scenario;
  scenario.posts = posts;
  scenario.nodes = nodes;
  scenario.side = side;
  scenario.seed = seed;
  scenario.eta = eta;

  // Field: surveyed or generated.
  geom::Field field;
  const auto radio = energy::RadioModel::uniform_levels(scenario.levels, scenario.range_step);
  if (!field_path.empty()) {
    field = io::load_field(field_path);
    std::printf("loaded field '%s': %zu posts\n", field_path.c_str(), field.posts.size());
  } else {
    try {
      field = svc::sample_field(scenario);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "field generation: %s\n", error.what());
      return 1;
    }
    std::printf("generated %dx%.0fm field with %d posts (seed %lld)\n", static_cast<int>(side),
                side, posts, static_cast<long long>(seed));
  }

  const auto instance =
      core::Instance::geometric(field, radio, svc::make_charging(scenario), nodes);

  // Solve via the shared planner; --solver takes any registry spec, and the
  // standalone --threads / --ls-strategy / --exact-* flags are folded into
  // the spec unless it sets them explicitly (svc::resolve_solver_spec).
  svc::PlanOptions plan_options;
  plan_options.solver = solver;
  plan_options.ls_threads = threads;
  plan_options.ls_strategy = ls_strategy;
  plan_options.exact_threads = exact_threads;
  plan_options.exact_split_depth = exact_split_depth;
  plan_options.exact_budget_s = exact_budget;
  plan_options.charger_power_w = charger_power;
  plan_options.charger_speed_mps = charger_speed;
  plan_options.bits_per_report = bits;

  svc::PlanOutcome outcome;
  try {
    outcome = svc::run_plan(instance, plan_options, &metrics_sink, obs_cli.progress());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "solver '%s': %s\n", solver.c_str(), error.what());
    std::fprintf(stderr, "registered solvers:\n");
    const auto& solvers = core::SolverRegistry::global();
    for (const std::string& name : solvers.names()) {
      std::fprintf(stderr, "  %-10s %s\n", name.c_str(), solvers.help(name).c_str());
    }
    return 1;
  }
  const core::Solution& solution = outcome.solution;
  const double cost = outcome.cost_j_per_bit;
  std::printf("solver %s: total recharging cost %s per reported bit\n", solver.c_str(),
              util::format_energy(cost).c_str());

  obs::RunReport run_report("wrsn deployment plan");
  svc::add_plan_sections(run_report, instance, outcome,
                         field_path.empty() ? "generated" : field_path,
                         static_cast<std::int64_t>(seed), eta, bits, solver);

  // Charger feasibility table (the sections above already carry the values).
  const sim::PatrolFeasibility& feasibility = outcome.feasibility;
  util::Table report({"charger metric", "value"});
  report.begin_row().add("patrol tour length [m]").add(outcome.tour.length_m, 1);
  report.begin_row().add("network RF demand [W]").add(feasibility.demand_w, 4);
  report.begin_row().add("charger duty cycle").add(feasibility.duty, 4);
  report.begin_row().add("feasible with one charger").add(feasibility.feasible ? "yes" : "NO");
  if (feasibility.feasible) {
    report.begin_row().add("patrol cycle [min]").add(feasibility.cycle_time_s / 60.0, 2);
    report.begin_row().add("min battery per node [J]").add(
        feasibility.min_battery_capacity_j, 4);
  }
  report.print_ascii(std::cout);

  // Dry-run the plan: rounds of reporting against finite batteries, metered
  // through the same sink so sim/* metrics land next to the solver's.
  if (sim_rounds > 0) {
    WRSN_TRACE_SPAN("plan/simulate");
    sim::NetworkConfig sim_config;
    sim_config.bits_per_report = bits;
    sim_config.sink = &metrics_sink;
    sim_config.progress = obs_cli.progress();
    sim_config.faults.seed = static_cast<std::uint64_t>(sim_fault_seed);
    sim_config.faults.post_destruction_hazard = sim_faults;
    sim_config.faults.node_death_hazard = sim_node_faults;
    sim_config.faults.link_outage_hazard = sim_outages;
    try {
      sim_config.repair = sim::repair_policy_from_name(sim_repair);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "--sim-repair: %s\n", error.what());
      return 1;
    }
    sim::NetworkSim simulation(instance, solution, sim_config);
    simulation.run_rounds(static_cast<std::uint64_t>(sim_rounds));
    double battery_min = 0.0;
    double battery_sum = 0.0;
    int battery_count = 0;
    for (const auto& post : simulation.posts()) {
      for (const auto& node : post.nodes) {
        battery_min = battery_count == 0 ? node.battery_j : std::min(battery_min, node.battery_j);
        battery_sum += node.battery_j;
        ++battery_count;
      }
    }
    std::printf("simulated %llu reporting rounds: %d dead nodes, %s drawn\n",
                static_cast<unsigned long long>(simulation.rounds_completed()),
                simulation.dead_node_count(),
                util::format_energy(simulation.total_consumed()).c_str());
    run_report.begin_section("simulation")
        .add("rounds", simulation.rounds_completed())
        .add("dead_nodes", simulation.dead_node_count())
        .add("consumed_j", simulation.total_consumed())
        .add("battery_min_j", battery_min)
        .add("battery_mean_j", battery_count > 0 ? battery_sum / battery_count : 0.0);
    if (sim_config.faults.enabled() || sim_config.repair != sim::RepairPolicy::kNone) {
      std::printf(
          "resilience: %llu faults, %d posts destroyed, delivery ratio %.4f, "
          "%llu reroutes, mean repair latency %.1f rounds\n",
          static_cast<unsigned long long>(simulation.faults_injected()),
          simulation.destroyed_post_count(), simulation.delivery_ratio(),
          static_cast<unsigned long long>(simulation.reroutes()),
          simulation.repair_latency_mean());
      run_report.begin_section("resilience")
          .add("repair_policy", sim::repair_policy_name(sim_config.repair))
          .add("faults_injected", static_cast<std::int64_t>(simulation.faults_injected()))
          .add("destroyed_posts", simulation.destroyed_post_count())
          .add("failed_nodes", simulation.failed_node_count())
          .add("delivery_ratio", simulation.delivery_ratio())
          .add("delivered_bits", simulation.delivered_bits_total())
          .add("dropped_bits", simulation.dropped_bits_total())
          .add("backlog_bits", simulation.backlog_bits_total())
          .add("reroutes", static_cast<std::int64_t>(simulation.reroutes()))
          .add("repair_latency_mean_rounds", simulation.repair_latency_mean());
    }
  }

  // Charging-policy stage: co-simulate the plan under every requested policy
  // (sim::ChargingPolicyRegistry specs) so the scheduling choice is priced
  // next to the deployment itself.  The spec "fixed" runs zero mobile
  // chargers over the greedy core::place_chargers placement.
  if (!charging_policies.empty()) {
    WRSN_TRACE_SPAN("plan/policies");
    sim::ChargerConfig policy_charger;
    policy_charger.radiated_power_w = charger_power;
    policy_charger.speed_mps = charger_speed;
    util::Table policy_table(
        {"policy", "chargers", "alive", "deaths", "visits", "RF [J]", "travel [J]"});
    run_report.begin_section("charging_policies").add("rounds", policy_rounds);
    for (const std::string& policy_spec : charging_policies) {
      try {
        sim::NetworkConfig policy_net;
        policy_net.bits_per_report = bits;
        sim::NetworkSim policy_network(instance, solution, policy_net);
        std::vector<sim::FixedCharger> fixed;
        int mobile = 1;
        std::string charger_count = "1 mobile";
        if (policy_spec == "fixed" || policy_spec.rfind("fixed:", 0) == 0) {
          core::PlacementConfig placement_cfg;
          placement_cfg.coverage_radius_m = placement_radius;
          placement_cfg.radiated_power_w = placement_power;
          placement_cfg.round_period_s = policy_charger.round_period_s;
          placement_cfg.bits_per_round = bits;
          const core::PlacementResult placement =
              core::place_chargers(instance, solution, placement_cfg);
          fixed = sim::fixed_chargers_from(placement, placement_power, placement_radius);
          mobile = 0;
          charger_count = std::to_string(placement.chargers.size()) + " fixed";
          run_report.add("placement_chargers",
                         static_cast<std::int64_t>(placement.chargers.size()))
              .add("placement_feasible", placement.feasible)
              .add("placement_power_w", placement.total_power_w);
        }
        sim::ChargerSim policy_sim(policy_network, policy_charger, mobile,
                                   sim::make_charging_policy(policy_spec),
                                   std::move(fixed), &metrics_sink);
        policy_sim.run(static_cast<std::uint64_t>(policy_rounds));
        const sim::ChargerSimStats& stats = policy_sim.stats();
        policy_table.begin_row()
            .add(policy_spec)
            .add(charger_count)
            .add(stats.any_death ? "NO" : "yes")
            .add(policy_network.dead_node_count())
            .add(static_cast<long long>(stats.visits))
            .add(stats.radiated_j + stats.fixed_radiated_j, 3)
            .add(stats.travel_j, 1);
        run_report.add(policy_spec + "/alive", !stats.any_death)
            .add(policy_spec + "/visits", static_cast<std::int64_t>(stats.visits))
            .add(policy_spec + "/radiated_j", stats.radiated_j + stats.fixed_radiated_j)
            .add(policy_spec + "/travel_j", stats.travel_j);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "--charging-policy '%s': %s\n", policy_spec.c_str(),
                     error.what());
        return 1;
      }
    }
    policy_table.print_ascii(std::cout);
  }

  // Artifacts.
  io::save_field(out + ".field.txt", field);
  io::save_solution(out + ".solution.txt", solution);
  viz::save_svg(out + ".svg", instance, &solution);
  std::printf("wrote %s.field.txt, %s.solution.txt, %s.svg\n", out.c_str(), out.c_str(),
              out.c_str());
  if (!obs_cli.finish(&run_report)) return 1;
  return 0;
}
