// End-to-end executable demo: charging policies from the sim::ChargingPolicy
// registry keep a planned network alive, and the comparison table shows the
// price each policy pays (energy radiated, travel, visits) for doing so.
//
// Pipeline: random field -> RFH plan -> per-policy discrete-event
// co-simulation of reporting rounds, battery rotation, and a charger fleet.
// The special spec "fixed" runs zero mobile chargers over the greedy
// core::place_chargers placement instead.
//
// Run:  ./charger_patrol [--rounds 5000] [--posts 15] [--nodes 45]
//                        [--policy <spec>]... [--fleet 1] [--list-policies]
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/charger_placement.hpp"
#include "core/rfh.hpp"
#include "sim/charger_sim.hpp"
#include "sim/charging_policy.hpp"
#include "sim/network_sim.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  int posts = 15;
  int nodes = 45;
  int fleet = 1;
  std::int64_t rounds = 5000;
  std::int64_t seed = 11;
  bool list_policies = false;
  std::vector<std::string> policies{"nearest-deficit", "threshold", "periodic:every=15",
                                    "lookahead", "adaptive", "fixed"};
  util::Flags flags;
  flags.add_int("posts", &posts, "number of posts");
  flags.add_int("nodes", &nodes, "sensor-node budget");
  flags.add_int("fleet", &fleet, "mobile chargers per policy (ignored by 'fixed')");
  flags.add_int64("rounds", &rounds, "reporting rounds to simulate");
  flags.add_int64("seed", &seed, "RNG seed");
  flags.add_string_list("policy", &policies,
                        "charging-policy spec to compare (repeatable)");
  flags.add_bool("list-policies", &list_policies,
                 "print the charging-policy registry and exit");
  if (!flags.parse(argc, argv)) return 0;

  if (list_policies) {
    const auto& registry = sim::ChargingPolicyRegistry::global();
    util::Table table({"policy", "description"});
    for (const std::string& name : registry.names()) {
      table.begin_row().add(name).add(registry.help(name));
    }
    table.print_ascii(std::cout);
    return 0;
  }

  // Plan.
  util::Rng rng(static_cast<std::uint64_t>(seed));
  geom::FieldConfig field_cfg;
  field_cfg.width = 200.0;
  field_cfg.height = 200.0;
  field_cfg.num_posts = posts;
  geom::Field field = geom::generate_field(field_cfg, rng);
  const auto radio = energy::RadioModel::uniform_levels(3, 25.0);
  while (!geom::is_connected(field, radio.max_range())) {
    field = geom::generate_field(field_cfg, rng);
  }
  const auto instance = core::Instance::geometric(
      field, radio, energy::ChargingModel::linear(0.01), nodes);
  const core::RfhResult plan = core::solve_rfh(instance);
  std::printf("plan: %d posts / %d nodes, analytic recharging cost %s per bit-round\n",
              posts, nodes, util::format_energy(plan.cost).c_str());

  sim::NetworkConfig net_cfg;
  net_cfg.bits_per_report = 4096;
  net_cfg.battery_capacity_j = 0.02;

  sim::ChargerConfig charger_cfg;
  charger_cfg.speed_mps = 10.0;
  charger_cfg.radiated_power_w = 50.0;
  charger_cfg.round_period_s = 60.0;

  const double analytic_per_round = plan.cost * net_cfg.bits_per_report;
  std::printf("analytic cost x bits: %.4f mJ per round\n\n", analytic_per_round * 1e3);

  // Simulate every policy on a fresh network (same plan, same fault-free
  // round sequence) so the outcomes compare paired.
  util::Table table({"policy", "chargers", "alive", "deaths", "visits", "RF [J]",
                     "per round [mJ]", "travel [J]"});
  bool any_failed = false;
  for (const std::string& spec : policies) {
    try {
      sim::NetworkSim network(instance, plan.solution, net_cfg);
      std::vector<sim::FixedCharger> fixed;
      int mobile = fleet;
      std::string charger_count = std::to_string(fleet) + " mobile";
      if (spec == "fixed" || spec.rfind("fixed:", 0) == 0) {
        core::PlacementConfig placement_cfg;
        placement_cfg.coverage_radius_m = 50.0;
        placement_cfg.radiated_power_w = 5.0;
        placement_cfg.round_period_s = charger_cfg.round_period_s;
        placement_cfg.bits_per_round = net_cfg.bits_per_report;
        const core::PlacementResult placement =
            core::place_chargers(instance, plan.solution, placement_cfg);
        fixed = sim::fixed_chargers_from(placement, placement_cfg.radiated_power_w,
                                         placement_cfg.coverage_radius_m);
        mobile = 0;
        charger_count = std::to_string(placement.chargers.size()) + " fixed";
        if (!placement.feasible) {
          std::printf("note: placement left %zu post(s) uncovered\n",
                      placement.uncovered.size());
        }
      }
      sim::ChargerSim charger(network, charger_cfg, mobile,
                              sim::make_charging_policy(spec), std::move(fixed));
      charger.run(static_cast<std::uint64_t>(rounds));
      const sim::ChargerSimStats& stats = charger.stats();
      const double radiated = stats.radiated_j + stats.fixed_radiated_j;
      table.begin_row()
          .add(spec)
          .add(charger_count)
          .add(stats.any_death ? "NO" : "yes")
          .add(network.dead_node_count())
          .add(static_cast<long long>(stats.visits))
          .add(radiated, 3)
          .add(radiated / static_cast<double>(stats.rounds) * 1e3, 4)
          .add(stats.travel_j, 1);
      any_failed = any_failed || stats.any_death;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "policy '%s' failed: %s\n", spec.c_str(), error.what());
      any_failed = true;
    }
  }
  table.print_ascii(std::cout);

  if (any_failed) {
    std::printf("\nWARNING: at least one policy could not keep the network alive --\n"
                "increase power/speed or the fixed-charger budget.\n");
    return 1;
  }
  std::printf("\nall policies kept the network alive for the whole horizon; the\n"
              "reactive ones pay within a few percent of the planner's objective\n"
              "(%.4f mJ per round). That is the paper's cost metric, validated end\n"
              "to end across scheduling policies.\n", analytic_per_round * 1e3);
  return 0;
}
