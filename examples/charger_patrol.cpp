// End-to-end executable demo: a mobile charger keeps a planned network
// alive forever, and the energy it radiates matches the analytic total
// recharging cost the planner minimized.
//
// Pipeline: random field -> RFH plan -> discrete-event co-simulation of
// reporting rounds, battery rotation, and a patrol charger.
//
// Run:  ./charger_patrol [--rounds 5000] [--posts 15] [--nodes 45]
#include <cstdio>
#include <iostream>

#include "core/rfh.hpp"
#include "sim/charger.hpp"
#include "sim/network_sim.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  int posts = 15;
  int nodes = 45;
  std::int64_t rounds = 5000;
  std::int64_t seed = 11;
  util::Flags flags;
  flags.add_int("posts", &posts, "number of posts");
  flags.add_int("nodes", &nodes, "sensor-node budget");
  flags.add_int64("rounds", &rounds, "reporting rounds to simulate");
  flags.add_int64("seed", &seed, "RNG seed");
  if (!flags.parse(argc, argv)) return 0;

  // Plan.
  util::Rng rng(static_cast<std::uint64_t>(seed));
  geom::FieldConfig field_cfg;
  field_cfg.width = 200.0;
  field_cfg.height = 200.0;
  field_cfg.num_posts = posts;
  geom::Field field = geom::generate_field(field_cfg, rng);
  const auto radio = energy::RadioModel::uniform_levels(3, 25.0);
  while (!geom::is_connected(field, radio.max_range())) {
    field = geom::generate_field(field_cfg, rng);
  }
  const auto instance = core::Instance::geometric(
      field, radio, energy::ChargingModel::linear(0.01), nodes);
  const core::RfhResult plan = core::solve_rfh(instance);
  std::printf("plan: %d posts / %d nodes, analytic recharging cost %s per bit-round\n",
              posts, nodes, util::format_energy(plan.cost).c_str());

  // Simulate.
  sim::NetworkConfig net_cfg;
  net_cfg.bits_per_report = 4096;
  net_cfg.battery_capacity_j = 0.02;
  sim::NetworkSim network(instance, plan.solution, net_cfg);

  sim::ChargerConfig charger_cfg;
  charger_cfg.speed_mps = 10.0;
  charger_cfg.radiated_power_w = 50.0;
  charger_cfg.round_period_s = 60.0;
  sim::PatrolSim patrol(network, charger_cfg);
  patrol.run(static_cast<std::uint64_t>(rounds));
  const sim::ChargerStats& stats = patrol.stats();

  const double analytic_per_round = plan.cost * net_cfg.bits_per_report;
  util::Table table({"metric", "value"});
  table.begin_row().add("rounds simulated").add(static_cast<long long>(stats.rounds));
  table.begin_row().add("simulated days (60 s rounds)").add(
      static_cast<double>(stats.rounds) * charger_cfg.round_period_s / 86400.0, 2);
  table.begin_row().add("node deaths").add(network.dead_node_count());
  table.begin_row().add("charger visits").add(static_cast<long long>(stats.visits));
  table.begin_row().add("charger distance [km]").add(stats.distance_m / 1000.0, 2);
  table.begin_row().add("RF energy radiated [J]").add(stats.radiated_j, 3);
  table.begin_row().add("  per round [mJ]").add(stats.radiated_per_round() * 1e3, 4);
  table.begin_row().add("analytic cost x bits [mJ]").add(analytic_per_round * 1e3, 4);
  table.begin_row().add("measured / analytic").add(
      stats.radiated_per_round() / analytic_per_round, 4);
  table.begin_row().add("locomotion energy [J]").add(stats.travel_j, 1);
  table.print_ascii(std::cout);

  if (stats.any_death) {
    std::printf("\nWARNING: the charger could not keep up -- increase power/speed.\n");
    return 1;
  }
  std::printf("\nnetwork alive for the whole horizon; the charger paid within a few\n"
              "percent of the planner's objective. That is the paper's cost metric,\n"
              "validated end to end.\n");
  return 0;
}
