// Structural-health monitoring of a bridge (Section I's motivating case:
// nodes embedded in structures cannot be reclaimed or replaced, so wireless
// recharging is the only option).
//
// Posts sit every 30 m along a 360 m deck; the base station is at one
// abutment. The linear topology makes the economics easy to see: posts near
// the abutment forward everything, so the co-design stacks nodes there.
// The example sweeps the node budget and prints the marginal value of each
// extra batch of nodes -- a provisioning table for the bridge operator.
//
// Run:  ./bridge_health [--span 360] [--spacing 30]
#include <cstdio>
#include <iostream>

#include "core/baseline.hpp"
#include "core/idb.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace wrsn;

int main(int argc, char** argv) {
  double span = 360.0;
  double spacing = 30.0;
  util::Flags flags;
  flags.add_double("span", &span, "bridge length in meters");
  flags.add_double("spacing", &spacing, "post spacing in meters");
  if (!flags.parse(argc, argv)) return 0;

  const int posts = static_cast<int>(span / spacing);
  const geom::Field field = geom::line_field(span, posts, 0.0);
  const auto radio = energy::RadioModel::uniform_levels(3, 25.0);
  const auto charging = energy::ChargingModel::linear(0.01);

  std::printf("bridge: %.0f m span, %d posts every %.0f m\n\n", span, posts, spacing);

  util::Table table({"node budget M", "IDB cost [uJ/bit]", "balanced cost [uJ/bit]",
                     "saving [%]", "marginal value of batch [uJ]"});
  double previous_cost = -1.0;
  for (int budget = posts; budget <= posts * 4; budget += posts / 2) {
    const auto instance = core::Instance::geometric(field, radio, charging, budget);
    const double idb = core::solve_idb(instance).cost;
    const double balanced = core::solve_balanced_baseline(instance).cost;
    table.begin_row()
        .add(budget)
        .add(idb * 1e6, 4)
        .add(balanced * 1e6, 4)
        .add((1.0 - idb / balanced) * 100.0, 1)
        .add(previous_cost < 0.0 ? std::string("-")
                                 : util::format_double((previous_cost - idb) * 1e6, 4));
    previous_cost = idb;
  }
  table.print_ascii(std::cout);

  // Show the deployment shape at 2x provisioning.
  const auto instance = core::Instance::geometric(field, radio, charging, posts * 2);
  const auto plan = core::solve_idb(instance);
  std::printf("\ndeployment at M = %d (post 0 is nearest the abutment):\n  ", posts * 2);
  for (int p = 0; p < posts; ++p) {
    std::printf("%d ", plan.solution.deployment[static_cast<std::size_t>(p)]);
  }
  std::printf("\nthe abutment-side posts carry the whole deck's reports and get the\n"
              "extra nodes; the far end keeps single nodes.\n");
  return 0;
}
