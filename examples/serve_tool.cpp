// wrsn_serve: the planning daemon.  Binds the `wrsn-rpc v1` listeners
// (unix socket and/or loopback TCP), prints one "ready" line so scripts can
// wait on it, then serves until a client sends `shutdown` or the process
// receives SIGINT/SIGTERM.  Protocol: docs/service.md.
//
//   build/examples/serve_tool --unix-socket=wrsn.sock
//   build/examples/serve_tool --tcp-port=0 --workers=4 --cache-capacity=16
#include <csignal>
#include <cstdio>
#include <string>

#include "svc/server.hpp"
#include "util/flags.hpp"

namespace {

wrsn::svc::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int tcp_port = -1;
  int workers = 2;
  int cache_capacity = 8;
  int queue_capacity = 64;
  double default_deadline_s = 300.0;

  wrsn::util::Flags flags;
  flags.add_string("unix-socket", &unix_path, "unix socket path to listen on (empty = none)")
      .add_int("tcp-port", &tcp_port, "loopback TCP port (-1 = none, 0 = ephemeral)")
      .add_int("workers", &workers, "request worker threads (<= 0 = hardware concurrency)")
      .add_int("cache-capacity", &cache_capacity, "session cache capacity (scenarios kept warm)")
      .add_int("queue-capacity", &queue_capacity, "dispatch queue bound before `overloaded`")
      .add_double("default-deadline-s", &default_deadline_s,
                  "deadline for requests that do not set deadline_s");
  if (!flags.parse(argc, argv)) return 2;

  if (unix_path.empty() && tcp_port < 0) {
    std::fprintf(stderr, "serve_tool: need --unix-socket and/or --tcp-port\n");
    return 2;
  }
  if (cache_capacity < 1 || queue_capacity < 1) {
    std::fprintf(stderr, "serve_tool: --cache-capacity and --queue-capacity must be >= 1\n");
    return 2;
  }

  wrsn::svc::ServerOptions options;
  options.unix_path = unix_path;
  options.tcp_port = tcp_port;
  options.workers = workers;
  options.cache_capacity = static_cast<std::size_t>(cache_capacity);
  options.queue_capacity = static_cast<std::size_t>(queue_capacity);
  options.default_deadline_s = default_deadline_s;

  wrsn::svc::Server server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_tool: %s\n", e.what());
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // One machine-greppable readiness line; scripts poll for "ready".
  if (!unix_path.empty()) {
    std::printf("wrsn_serve ready unix=%s\n", unix_path.c_str());
  }
  if (server.tcp_port() >= 0) {
    std::printf("wrsn_serve ready tcp=%d\n", server.tcp_port());
  }
  std::fflush(stdout);

  server.wait();
  g_server = nullptr;
  std::printf("wrsn_serve stopped: served=%llu failed=%llu\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.requests_failed()));
  return 0;
}
